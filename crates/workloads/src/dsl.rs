//! Builder helpers shared by the workload kernels.
//!
//! Every kernel is written in "32-bit architecture form": plain `i32`
//! arithmetic with no explicit sign extensions — exactly what a Java
//! front end would produce — and the `sxe-jit` pipeline later widens it
//! for the 64-bit machine.

use sxe_ir::{BinOp, Cond, FunctionBuilder, Reg, Ty};

/// Emit an `i32` constant.
pub fn c32(fb: &mut FunctionBuilder, v: i64) -> Reg {
    fb.iconst(Ty::I32, v)
}

/// Emit `a + b` at `i32`.
pub fn add(fb: &mut FunctionBuilder, a: Reg, b: Reg) -> Reg {
    fb.bin(BinOp::Add, Ty::I32, a, b)
}

/// Emit `a - b` at `i32`.
pub fn sub(fb: &mut FunctionBuilder, a: Reg, b: Reg) -> Reg {
    fb.bin(BinOp::Sub, Ty::I32, a, b)
}

/// Emit `a * b` at `i32`.
pub fn mul(fb: &mut FunctionBuilder, a: Reg, b: Reg) -> Reg {
    fb.bin(BinOp::Mul, Ty::I32, a, b)
}

/// Emit `a & b` at `i32`.
pub fn and(fb: &mut FunctionBuilder, a: Reg, b: Reg) -> Reg {
    fb.bin(BinOp::And, Ty::I32, a, b)
}

/// Emit `a & mask` for a constant mask.
pub fn and_c(fb: &mut FunctionBuilder, a: Reg, mask: i64) -> Reg {
    let m = c32(fb, mask);
    and(fb, a, m)
}

/// Emit `a + c` for a constant.
pub fn add_c(fb: &mut FunctionBuilder, a: Reg, c: i64) -> Reg {
    let k = c32(fb, c);
    add(fb, a, k)
}

/// Emit `a * c` for a constant.
pub fn mul_c(fb: &mut FunctionBuilder, a: Reg, c: i64) -> Reg {
    let k = c32(fb, c);
    mul(fb, a, k)
}

/// Emit `a << c` at `i32` for a constant amount.
pub fn shl_c(fb: &mut FunctionBuilder, a: Reg, c: i64) -> Reg {
    let k = c32(fb, c);
    fb.bin(BinOp::Shl, Ty::I32, a, k)
}

/// Emit the arithmetic shift `a >> c` at `i32` for a constant amount.
pub fn shr_c(fb: &mut FunctionBuilder, a: Reg, c: i64) -> Reg {
    let k = c32(fb, c);
    fb.bin(BinOp::Shr, Ty::I32, a, k)
}

/// Emit the logical shift `a >>> c` at `i32` for a constant amount.
pub fn shru_c(fb: &mut FunctionBuilder, a: Reg, c: i64) -> Reg {
    let k = c32(fb, c);
    fb.bin(BinOp::Shru, Ty::I32, a, k)
}

/// Build `for (i = start; i < end; i += 1) body(i)`.
///
/// The body closure must leave the builder positioned in an unterminated
/// block (it may create inner control flow). The induction variable is a
/// dedicated register mutated in place, exactly like a Java local.
pub fn for_range(
    fb: &mut FunctionBuilder,
    start: Reg,
    end: Reg,
    body: impl FnOnce(&mut FunctionBuilder, Reg),
) {
    let i = fb.new_reg();
    fb.copy_to(Ty::I32, i, start);
    let head = fb.new_block();
    let body_bb = fb.new_block();
    let exit = fb.new_block();
    fb.br(head);
    fb.switch_to(head);
    fb.cond_br(Cond::Lt, Ty::I32, i, end, body_bb, exit);
    fb.switch_to(body_bb);
    body(fb, i);
    let one = c32(fb, 1);
    fb.bin_to(BinOp::Add, Ty::I32, i, i, one);
    fb.br(head);
    fb.switch_to(exit);
}

/// Build `for (i = start; i > end; i -= 1) body(i)` — the paper's
/// count-down loop shape (Theorem 4 territory).
pub fn for_range_down(
    fb: &mut FunctionBuilder,
    start: Reg,
    end: Reg,
    body: impl FnOnce(&mut FunctionBuilder, Reg),
) {
    let i = fb.new_reg();
    fb.copy_to(Ty::I32, i, start);
    let head = fb.new_block();
    let body_bb = fb.new_block();
    let exit = fb.new_block();
    fb.br(head);
    fb.switch_to(head);
    fb.cond_br(Cond::Gt, Ty::I32, i, end, body_bb, exit);
    fb.switch_to(body_bb);
    body(fb, i);
    let one = c32(fb, 1);
    fb.bin_to(BinOp::Sub, Ty::I32, i, i, one);
    fb.br(head);
    fb.switch_to(exit);
}

/// Build an if/else; both closures must leave their block unterminated.
pub fn if_else(
    fb: &mut FunctionBuilder,
    cond: Cond,
    lhs: Reg,
    rhs: Reg,
    then_body: impl FnOnce(&mut FunctionBuilder),
    else_body: impl FnOnce(&mut FunctionBuilder),
) {
    let t = fb.new_block();
    let e = fb.new_block();
    let join = fb.new_block();
    fb.cond_br(cond, Ty::I32, lhs, rhs, t, e);
    fb.switch_to(t);
    then_body(fb);
    fb.br(join);
    fb.switch_to(e);
    else_body(fb);
    fb.br(join);
    fb.switch_to(join);
}

/// Build an `if` without an else.
pub fn if_then(
    fb: &mut FunctionBuilder,
    cond: Cond,
    lhs: Reg,
    rhs: Reg,
    then_body: impl FnOnce(&mut FunctionBuilder),
) {
    if_else(fb, cond, lhs, rhs, then_body, |_| {});
}

/// The deterministic 32-bit LCG used to generate workload data in-IR
/// (java.util.Random-flavoured constants, 32-bit state).
///
/// Updates `state` in place and returns a register holding the next
/// value, already masked to `mask`.
pub fn lcg_next(fb: &mut FunctionBuilder, state: Reg, mask: i64) -> Reg {
    // state = state * 1103515245 + 12345 (32-bit wrap).
    let m = mul_c(fb, state, 1_103_515_245);
    let next = add_c(fb, m, 12_345);
    fb.copy_to(Ty::I32, state, next);
    // Use the higher-quality middle bits.
    let mid = shru_c(fb, state, 8);
    and_c(fb, mid, mask)
}

/// Allocate an array and fill it with LCG data masked to `mask`.
pub fn alloc_filled(
    fb: &mut FunctionBuilder,
    elem: Ty,
    len: Reg,
    seed: i64,
    mask: i64,
) -> Reg {
    let arr = fb.new_array(elem, len);
    let state = fb.new_reg();
    let s0 = c32(fb, seed);
    fb.copy_to(Ty::I32, state, s0);
    let zero = c32(fb, 0);
    for_range(fb, zero, len, |fb, i| {
        let v = lcg_next(fb, state, mask);
        fb.array_store(elem, arr, i, v);
    });
    arr
}

/// Sum an `i32` array into a rolling 32-bit checksum
/// (`h = h * 31 + a[i]`), returning the checksum register.
pub fn checksum_i32(fb: &mut FunctionBuilder, arr: Reg) -> Reg {
    let h = fb.new_reg();
    let zero = c32(fb, 0);
    fb.copy_to(Ty::I32, h, zero);
    let len = fb.array_len(arr);
    let z = c32(fb, 0);
    for_range(fb, z, len, |fb, i| {
        let v = fb.array_load(Ty::I32, arr, i);
        let h31 = mul_c(fb, h, 31);
        let nh = add(fb, h31, v);
        fb.copy_to(Ty::I32, h, nh);
    });
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{verify_function, Module, Target};
    use sxe_vm::Vm;

    fn run_main(f: sxe_ir::Function) -> i64 {
        verify_function(&f).unwrap();
        let mut m = Module::new();
        m.add_function(f);
        let mut vm = Vm::new(&m, Target::Ia64);
        vm.run("main", &[]).expect("no trap").ret.expect("value")
    }

    #[test]
    fn for_range_counts() {
        let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I32));
        let acc = fb.new_reg();
        let zero = c32(&mut fb, 0);
        fb.copy_to(Ty::I32, acc, zero);
        let start = c32(&mut fb, 0);
        let end = c32(&mut fb, 10);
        for_range(&mut fb, start, end, |fb, i| {
            let n = add(fb, acc, i);
            fb.copy_to(Ty::I32, acc, n);
        });
        fb.ret(Some(acc));
        assert_eq!(run_main(fb.finish()), 45);
    }

    #[test]
    fn for_range_down_counts() {
        let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I32));
        let acc = fb.new_reg();
        let zero = c32(&mut fb, 0);
        fb.copy_to(Ty::I32, acc, zero);
        let start = c32(&mut fb, 5);
        let end = c32(&mut fb, 0);
        for_range_down(&mut fb, start, end, |fb, i| {
            let n = add(fb, acc, i);
            fb.copy_to(Ty::I32, acc, n);
        });
        fb.ret(Some(acc));
        assert_eq!(run_main(fb.finish()), 15); // 5+4+3+2+1
    }

    #[test]
    fn if_else_both_arms() {
        for (x, expect) in [(1, 10), (5, 20)] {
            let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I32));
            let out = fb.new_reg();
            let xr = c32(&mut fb, x);
            let three = c32(&mut fb, 3);
            if_else(
                &mut fb,
                Cond::Lt,
                xr,
                three,
                |fb| {
                    let v = c32(fb, 10);
                    fb.copy_to(Ty::I32, out, v);
                },
                |fb| {
                    let v = c32(fb, 20);
                    fb.copy_to(Ty::I32, out, v);
                },
            );
            fb.ret(Some(out));
            assert_eq!(run_main(fb.finish()), expect);
        }
    }

    #[test]
    fn lcg_fill_is_deterministic() {
        let build = || {
            let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I32));
            let n = c32(&mut fb, 64);
            let arr = alloc_filled(&mut fb, Ty::I32, n, 42, 0xFFFF);
            let h = checksum_i32(&mut fb, arr);
            fb.ret(Some(h));
            run_main(fb.finish())
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert_ne!(a, 0);
    }
}
