//! The seven SPECjvm98-style kernels (paper Table 2 / Figures 12 and 14).

pub mod compress;
pub mod db;
pub mod jack;
pub mod javac;
pub mod jess;
pub mod mpegaudio;
pub mod mtrt;
