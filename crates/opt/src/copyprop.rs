//! Block-local copy propagation.

use std::collections::HashMap;

use sxe_ir::{Function, Inst, Reg};

/// Rewrite uses of copied registers to their sources within each block;
/// returns the number of operands rewritten.
pub fn run(f: &mut Function) -> usize {
    let mut changed = 0;
    for b in 0..f.blocks.len() {
        // dst -> src mappings still valid at the cursor.
        let mut copies: HashMap<Reg, Reg> = HashMap::new();
        let insts = &mut f.blocks[b].insts;
        for inst in insts.iter_mut() {
            if matches!(inst, Inst::Nop) {
                continue;
            }
            // Rewrite uses through the valid mappings.
            let uses = inst.uses();
            for u in uses {
                if let Some(&s) = copies.get(&u) {
                    if s != u {
                        inst.replace_uses(u, s);
                        changed += 1;
                    }
                }
            }
            // A def invalidates mappings involving the defined register.
            if let Some(d) = inst.dst() {
                copies.retain(|&k, &mut v| k != d && v != d);
            }
            // Record fresh copies (after invalidation, so `r = copy r` is
            // harmless).
            if let Inst::Copy { dst, src, .. } = *inst {
                if dst != src {
                    // Chase chains: if src is itself a copy of s0, map to s0.
                    let root = copies.get(&src).copied().unwrap_or(src);
                    copies.insert(dst, root);
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, BlockId, InstId};

    #[test]
    fn propagates_within_block() {
        let mut f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = copy.i32 r0\n    r2 = add.i32 r1, r1\n    ret r2\n}\n",
        )
        .unwrap();
        assert_eq!(run(&mut f), 2);
        match f.inst(InstId::new(BlockId(0), 1)) {
            Inst::Bin { lhs, rhs, .. } => {
                assert_eq!(*lhs, Reg(0));
                assert_eq!(*rhs, Reg(0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invalidated_by_redefinition() {
        let mut f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = copy.i32 r0\n    r0 = add.i32 r0, r0\n    r2 = add.i32 r1, r1\n    ret r2\n}\n",
        )
        .unwrap();
        // r1 maps to r0, but r0 is redefined: the use of r1 must stay.
        assert_eq!(run(&mut f), 0);
    }

    #[test]
    fn chains_are_chased() {
        let mut f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = copy.i32 r0\n    r2 = copy.i32 r1\n    r3 = add.i32 r2, r2\n    ret r3\n}\n",
        )
        .unwrap();
        run(&mut f);
        match f.inst(InstId::new(BlockId(0), 2)) {
            Inst::Bin { lhs, rhs, .. } => {
                assert_eq!(*lhs, Reg(0));
                assert_eq!(*rhs, Reg(0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn does_not_cross_blocks() {
        let mut f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = copy.i32 r0\n    br b1\n\
             b1:\n    r2 = add.i32 r1, r1\n    ret r2\n}\n",
        )
        .unwrap();
        assert_eq!(run(&mut f), 0);
    }
}
