//! The general-optimization pipeline (paper Figure 5, step 2).

use sxe_analysis::AnalysisCache;
use sxe_ir::{Function, Module, Target};

/// Which general optimizations to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneralOpts {
    /// Expand small leaf callees before the scalar passes (module-level;
    /// ignored by [`run_function`]).
    pub inline: Option<crate::inline::InlineOpts>,
    /// Block-local copy propagation.
    pub copyprop: bool,
    /// Constant and branch folding.
    pub constfold: bool,
    /// Algebraic simplification.
    pub simplify: bool,
    /// Local common-subexpression elimination.
    pub cse: bool,
    /// Loop-invariant code motion (the step-2 PRE effect on extensions).
    pub licm: bool,
    /// Dead-code elimination.
    pub dce: bool,
    /// Maximum pipeline repetitions.
    pub max_iters: usize,
}

impl Default for GeneralOpts {
    fn default() -> GeneralOpts {
        GeneralOpts {
            inline: Some(crate::inline::InlineOpts::default()),
            copyprop: true,
            constfold: true,
            simplify: true,
            cse: true,
            licm: true,
            dce: true,
            max_iters: 3,
        }
    }
}

impl GeneralOpts {
    /// All optimizations disabled (identity pipeline).
    #[must_use]
    pub fn none() -> GeneralOpts {
        GeneralOpts {
            inline: None,
            copyprop: false,
            constfold: false,
            simplify: false,
            cse: false,
            licm: false,
            dce: false,
            max_iters: 0,
        }
    }

    /// The enabled scalar passes, in pipeline order. This is the single
    /// source of truth for what one fixpoint round runs — both
    /// [`run_function`] and external drivers (the `sxe-jit` containment
    /// harness) iterate this list.
    #[must_use]
    pub fn passes(&self) -> Vec<Pass> {
        Pass::ALL.iter().copied().filter(|p| p.enabled(self)).collect()
    }
}

/// One scalar optimization pass, nameable and runnable on its own so a
/// driver can wrap each in a containment boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Block-local copy propagation.
    Copyprop,
    /// Constant and branch folding.
    Constfold,
    /// Algebraic simplification.
    Simplify,
    /// Local common-subexpression elimination.
    Cse,
    /// Loop-invariant code motion.
    Licm,
    /// Dead-code elimination.
    Dce,
}

impl Pass {
    /// All passes, in the pipeline order of one fixpoint round.
    pub const ALL: [Pass; 6] =
        [Pass::Copyprop, Pass::Constfold, Pass::Simplify, Pass::Cse, Pass::Licm, Pass::Dce];

    /// Stable human-readable name (used in compile reports and fault
    /// plans).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Pass::Copyprop => "copyprop",
            Pass::Constfold => "constfold",
            Pass::Simplify => "simplify",
            Pass::Cse => "cse",
            Pass::Licm => "licm",
            Pass::Dce => "dce",
        }
    }

    /// Run this pass once on `f` for `target`, returning the number of
    /// rewrites. Constant folding and simplification consult the target's
    /// machine model (MIPS64 canonicalizes narrow ALU results); the other
    /// passes are target-independent.
    pub fn run(self, f: &mut Function, target: Target) -> usize {
        match self {
            Pass::Copyprop => crate::copyprop::run(f),
            Pass::Constfold => crate::constfold::run(f, target),
            Pass::Simplify => crate::simplify::run(f, target),
            Pass::Cse => crate::cse::run(f),
            Pass::Licm => crate::licm::run(f),
            Pass::Dce => crate::dce::run(f),
        }
    }

    /// Like [`run`](Self::run), but keeping a memoized [`AnalysisCache`]
    /// coherent: passes with cache-aware implementations draw their
    /// analyses from it, and every rewrite is reported so stale facts are
    /// dropped.
    pub fn run_cached(self, f: &mut Function, cache: &mut AnalysisCache, target: Target) -> usize {
        match self {
            Pass::Licm => crate::licm::run_cached(f, cache),
            Pass::Dce => crate::dce::run_cached(f, cache),
            _ => {
                let n = self.run(f, target);
                cache.note_rewrites(&f.name, n);
                n
            }
        }
    }

    fn enabled(self, opts: &GeneralOpts) -> bool {
        match self {
            Pass::Copyprop => opts.copyprop,
            Pass::Constfold => opts.constfold,
            Pass::Simplify => opts.simplify,
            Pass::Cse => opts.cse,
            Pass::Licm => opts.licm,
            Pass::Dce => opts.dce,
        }
    }

    /// The metrics-registry counter this pass's rewrites accumulate
    /// under (`opt.rewrites.<name>` — see `sxe-telemetry`'s label
    /// scheme).
    #[must_use]
    pub fn metric_key(self) -> &'static str {
        match self {
            Pass::Copyprop => "opt.rewrites.copyprop",
            Pass::Constfold => "opt.rewrites.constfold",
            Pass::Simplify => "opt.rewrites.simplify",
            Pass::Cse => "opt.rewrites.cse",
            Pass::Licm => "opt.rewrites.licm",
            Pass::Dce => "opt.rewrites.dce",
        }
    }

    /// Record `n` rewrites from this pass into `stats`.
    pub fn record(self, stats: &mut OptStats, n: usize) {
        match self {
            Pass::Copyprop => stats.copyprop += n,
            Pass::Constfold => stats.constfold += n,
            Pass::Simplify => stats.simplify += n,
            Pass::Cse => stats.cse += n,
            Pass::Licm => stats.licm += n,
            Pass::Dce => stats.dce += n,
        }
    }
}

/// Counts of rewrites performed per pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Call sites inlined.
    pub inline: usize,
    /// Operands rewritten by copy propagation.
    pub copyprop: usize,
    /// Instructions folded to constants / branches folded.
    pub constfold: usize,
    /// Instructions simplified algebraically.
    pub simplify: usize,
    /// Instructions replaced by copies (CSE).
    pub cse: usize,
    /// Instructions hoisted out of loops.
    pub licm: usize,
    /// Instructions deleted as dead.
    pub dce: usize,
}

impl OptStats {
    /// Total rewrites across all passes.
    #[must_use]
    pub fn total(&self) -> usize {
        self.inline
            + self.copyprop
            + self.constfold
            + self.simplify
            + self.cse
            + self.licm
            + self.dce
    }

    /// Accumulate another round's stats.
    pub fn merge(&mut self, o: OptStats) {
        self.inline += o.inline;
        self.copyprop += o.copyprop;
        self.constfold += o.constfold;
        self.simplify += o.simplify;
        self.cse += o.cse;
        self.licm += o.licm;
        self.dce += o.dce;
    }

    /// Add these counts to a telemetry registry under the
    /// `opt.rewrites.*` labels ([`Pass::metric_key`], plus
    /// `opt.rewrites.inline` for the module-level inliner).
    pub fn record_into(&self, registry: &mut sxe_telemetry::Registry) {
        registry.add("opt.rewrites.inline", self.inline as u64);
        for p in Pass::ALL {
            let n = match p {
                Pass::Copyprop => self.copyprop,
                Pass::Constfold => self.constfold,
                Pass::Simplify => self.simplify,
                Pass::Cse => self.cse,
                Pass::Licm => self.licm,
                Pass::Dce => self.dce,
            };
            registry.add(p.metric_key(), n as u64);
        }
    }
}

/// Optimize one function for `target`.
pub fn run_function(f: &mut Function, opts: &GeneralOpts, target: Target) -> OptStats {
    let passes = opts.passes();
    let mut stats = OptStats::default();
    for _ in 0..opts.max_iters {
        let mut round = OptStats::default();
        for &p in &passes {
            p.record(&mut round, p.run(f, target));
        }
        let progress = round.total();
        stats.merge(round);
        if progress == 0 {
            break;
        }
    }
    f.compact();
    stats
}

/// [`run_function`] sharing a memoized [`AnalysisCache`] across passes and
/// fixpoint rounds, so the no-progress final round (and every clean pass
/// before it) stops recomputing CFG and liveness from scratch.
pub fn run_function_cached(
    f: &mut Function,
    opts: &GeneralOpts,
    cache: &mut AnalysisCache,
    target: Target,
) -> OptStats {
    let passes = opts.passes();
    let mut stats = OptStats::default();
    for _ in 0..opts.max_iters {
        let mut round = OptStats::default();
        for &p in &passes {
            p.record(&mut round, p.run_cached(f, cache, target));
        }
        let progress = round.total();
        stats.merge(round);
        if progress == 0 {
            break;
        }
    }
    f.compact();
    cache.note_rewrites(&f.name, stats.total());
    stats
}

/// Optimize every function of a module for `target` (inlining first,
/// when enabled).
pub fn run_module(m: &mut Module, opts: &GeneralOpts, target: Target) -> OptStats {
    let mut stats = OptStats::default();
    if let Some(inline_opts) = &opts.inline {
        stats.inline = crate::inline::run_module(m, inline_opts);
    }
    for f in &mut m.functions {
        stats.merge(run_function(f, opts, target));
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, verify_function};

    #[test]
    fn pipeline_composes() {
        // copy -> const -> fold -> dead: everything collapses.
        let mut f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 21\n    r2 = copy.i32 r1\n    r3 = add.i32 r2, r2\n    r4 = extend.32 r3\n    ret r4\n}\n",
        )
        .unwrap();
        let stats = run_function(&mut f, &GeneralOpts::default(), Target::default());
        assert!(stats.total() > 0);
        verify_function(&f).unwrap();
        assert_eq!(f.count_extends(None), 0, "extend of a constant folds away");
        // Result is just `const 42; ret`.
        assert!(f.inst_count() <= 2);
    }

    #[test]
    fn none_is_identity() {
        let src = "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 21\n    r2 = add.i32 r1, r1\n    ret r2\n}\n";
        let mut f = parse_function(src).unwrap();
        let g = f.clone();
        let stats = run_function(&mut f, &GeneralOpts::none(), Target::default());
        assert_eq!(stats.total(), 0);
        assert_eq!(f, g);
    }

    #[test]
    fn stats_export_reconciles_with_totals() {
        let stats = OptStats {
            inline: 1,
            copyprop: 2,
            constfold: 3,
            simplify: 4,
            cse: 5,
            licm: 6,
            dce: 7,
        };
        let mut registry = sxe_telemetry::Registry::new();
        stats.record_into(&mut registry);
        let exported: u64 = registry
            .counters()
            .filter(|(k, _)| k.starts_with("opt.rewrites."))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(exported, stats.total() as u64);
        assert_eq!(registry.counter(Pass::Licm.metric_key()), 6);
        assert_eq!(registry.counter("opt.rewrites.inline"), 1);
    }

    #[test]
    fn loop_invariant_extend_moves_out() {
        let mut f = parse_function(
            "func @f(i32, i64) -> i64 {\n\
             b0:\n    br b1\n\
             b1:\n    r2 = extend.32 r0\n    r1 = add.i64 r1, r2\n    r3 = const.i64 1\n    r1 = sub.i64 r1, r3\n    condbr gt.i64 r1, r3, b1, b2\n\
             b2:\n    ret r1\n}\n",
        )
        .unwrap();
        let stats = run_function(&mut f, &GeneralOpts::default(), Target::default());
        assert!(stats.licm >= 1);
        verify_function(&f).unwrap();
    }
}
