//! # sxe-opt — general scalar optimizations for the sxe IR
//!
//! The paper's compilation pipeline (Figure 5) runs "general
//! optimizations" between the 64-bit conversion and the sign-extension
//! elimination proper; those optimizations themselves remove some
//! extensions (constant folding turns `extend(const)` into a constant,
//! CSE merges repeated extensions, LICM hoists loop-invariant ones). This
//! crate provides that step:
//!
//! * [`inline`] — expansion of small leaf callees
//! * [`copyprop`] — block-local copy propagation
//! * [`constfold`] — constant/branch folding via [`sxe_ir::eval`]
//! * [`simplify`] — algebraic identities
//! * [`cse`] — block-local common-subexpression elimination
//! * [`licm`] — loop-invariant code motion with preheader creation
//! * [`dce`] — liveness-based dead-code elimination
//!
//! ```
//! use sxe_ir::parse_function;
//! use sxe_ir::Target;
//! use sxe_opt::{run_function, GeneralOpts};
//!
//! let mut f = parse_function(
//!     "func @f() -> i32 {\nb0:\n    r0 = const.i32 -9\n    r0 = extend.32 r0\n    ret r0\n}\n",
//! )?;
//! run_function(&mut f, &GeneralOpts::default(), Target::default());
//! assert_eq!(f.count_extends(None), 0); // folded away
//! # Ok::<(), sxe_ir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod constfold;
pub mod copyprop;
pub mod cse;
pub mod dce;
pub mod inline;
pub mod licm;
pub mod pipeline;
pub mod simplify;

pub use pipeline::{
    run_function, run_function_cached, run_module, GeneralOpts, OptStats, Pass,
};
