//! Dead-code elimination based on liveness.

use sxe_analysis::{AnalysisCache, BitSet, Liveness};
use sxe_ir::{Cfg, Function, Inst};

/// Delete pure instructions whose destination is dead; returns the number
/// removed. Iterates to a fixed point (removing one dead instruction can
/// kill another).
pub fn run(f: &mut Function) -> usize {
    run_cached(f, &mut AnalysisCache::new())
}

/// [`run`] drawing the CFG and liveness of each fixpoint round from a
/// memoized [`AnalysisCache`]: a round that removes nothing (always the
/// final one) reuses the facts of the round before it, and a function
/// already clean when the pass starts never recomputes anything.
pub fn run_cached(f: &mut Function, cache: &mut AnalysisCache) -> usize {
    let mut total = 0;
    loop {
        let cfg = cache.cfg(f);
        let live = cache.liveness(f);
        let n = sweep(f, &cfg, &live);
        cache.note_rewrites(&f.name, n);
        if n == 0 {
            break;
        }
        total += n;
    }
    f.compact();
    cache.note_rewrites(&f.name, total);
    total
}

fn sweep(f: &mut Function, cfg: &Cfg, live: &Liveness) -> usize {
    let mut removed = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        if !cfg.is_reachable(b) {
            // Unreachable code is trivially dead (keep the terminator so
            // the block stays structurally valid).
            let blk = f.block_mut(b);
            for inst in blk.insts.iter_mut() {
                if !inst.is_terminator() && !matches!(inst, Inst::Nop) {
                    *inst = Inst::Nop;
                    removed += 1;
                }
            }
            continue;
        }
        let mut live_set: BitSet = live.live_out(b).clone();
        // Walk backward deciding liveness at each instruction.
        let blk = f.block_mut(b);
        for inst in blk.insts.iter_mut().rev() {
            if matches!(inst, Inst::Nop) {
                continue;
            }
            let dead = match inst.dst() {
                Some(d) => !live_set.contains(d.index()),
                None => false,
            };
            if dead && !inst.has_side_effect() && !inst.is_terminator() {
                *inst = Inst::Nop;
                removed += 1;
                continue;
            }
            if let Some(d) = inst.dst() {
                live_set.remove(d.index());
            }
            for u in inst.uses() {
                live_set.insert(u.index());
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::parse_function;

    #[test]
    fn removes_dead_chain() {
        let mut f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 3\n    r2 = add.i32 r1, r1\n    r3 = extend.32 r2\n    ret r0\n}\n",
        )
        .unwrap();
        assert_eq!(run(&mut f), 3);
        assert_eq!(f.inst_count(), 1);
    }

    #[test]
    fn keeps_side_effects() {
        let mut f = parse_function(
            "func @f(i32, i32) -> i32 {\n\
             b0:\n    r2 = div.i32 r0, r1\n    r3 = newarray.i32 r0\n    ret r0\n}\n",
        )
        .unwrap();
        assert_eq!(run(&mut f), 0);
        assert_eq!(f.inst_count(), 3);
    }

    #[test]
    fn keeps_live_loop_values() {
        let mut f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 0\n    br b1\n\
             b1:\n    r2 = const.i32 1\n    r1 = add.i32 r1, r2\n    r0 = sub.i32 r0, r2\n    condbr gt.i32 r0, r2, b1, b2\n\
             b2:\n    ret r1\n}\n",
        )
        .unwrap();
        assert_eq!(run(&mut f), 0);
    }

    #[test]
    fn clears_unreachable_blocks() {
        let mut f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    ret r0\n\
             b1:\n    r1 = const.i32 5\n    r2 = add.i32 r1, r1\n    ret r2\n}\n",
        )
        .unwrap();
        assert_eq!(run(&mut f), 2);
    }

    #[test]
    fn dead_in_place_extend_removed() {
        let mut f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = copy.i32 r0\n    r1 = extend.32 r1\n    ret r0\n}\n",
        )
        .unwrap();
        assert_eq!(run(&mut f), 2);
        assert_eq!(f.count_extends(None), 0);
    }
}
