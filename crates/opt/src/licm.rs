//! Loop-invariant code motion.
//!
//! Moves pure, loop-invariant computations — including loop-invariant sign
//! extensions, the paper's step-2 PRE effect — into a preheader. Because
//! the IR is not in SSA form the pass checks the classical conditions:
//!
//! 1. the instruction is pure (no side effects, cannot trap);
//! 2. none of its operands has a definition inside the loop;
//! 3. it is the only definition of its destination inside the loop;
//! 4. its block dominates every use of the destination inside the loop
//!    (with intra-block ordering for same-block uses);
//! 5. for every exit edge `u -> v`, either its block dominates `u` or the
//!    destination is not live into `v`.

use std::collections::HashMap;

use sxe_analysis::{AnalysisCache, Liveness};
use sxe_ir::{BlockId, Cfg, DomTree, Function, Inst, InstId, LoopForest, Reg};

/// Hoist loop-invariant instructions; returns the number moved.
pub fn run(f: &mut Function) -> usize {
    run_cached(f, &mut AnalysisCache::new())
}

/// [`run`] drawing the CFG and liveness of each round from a memoized
/// [`AnalysisCache`]; the nothing-to-hoist round (always the final one)
/// reuses the previous round's facts instead of recomputing.
pub fn run_cached(f: &mut Function, cache: &mut AnalysisCache) -> usize {
    let mut total = 0;
    // Each round hoists out of one loop and then recomputes all analyses;
    // the in-loop instruction count strictly decreases, so this
    // terminates.
    loop {
        let cfg = cache.cfg(f);
        let live = cache.liveness(f);
        let moved = hoist_one_loop(f, &cfg, &live);
        cache.note_rewrites(&f.name, moved);
        if moved == 0 {
            return total;
        }
        total += moved;
    }
}

fn hoist_one_loop(f: &mut Function, cfg: &Cfg, live: &Liveness) -> usize {
    let dom = DomTree::compute(cfg);
    let forest = LoopForest::compute(cfg, &dom);

    // Innermost first.
    let mut order: Vec<usize> = (0..forest.loops.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(forest.loops[i].depth));

    for li in order {
        let l = &forest.loops[li];
        if l.blocks.contains(&f.entry()) {
            continue; // cannot place a preheader before the entry
        }
        // Definitions inside the loop, per register.
        let mut defs_in: HashMap<Reg, u32> = HashMap::new();
        for &b in &l.blocks {
            for inst in &f.block(b).insts {
                if let Some(d) = inst.dst() {
                    *defs_in.entry(d).or_insert(0) += 1;
                }
            }
        }
        // Uses inside the loop, per register.
        let mut uses_in: HashMap<Reg, Vec<InstId>> = HashMap::new();
        for &b in &l.blocks {
            for (i, inst) in f.block(b).insts.iter().enumerate() {
                for u in inst.uses() {
                    uses_in.entry(u).or_default().push(InstId::new(b, i));
                }
            }
        }
        // Exit edges.
        let mut exits: Vec<(BlockId, BlockId)> = Vec::new();
        for &b in &l.blocks {
            for &s in cfg.succs(b) {
                if !l.blocks.contains(&s) {
                    exits.push((b, s));
                }
            }
        }

        let mut candidates: Vec<InstId> = Vec::new();
        for &b in &l.blocks {
            for (i, inst) in f.block(b).insts.iter().enumerate() {
                let id = InstId::new(b, i);
                if matches!(inst, Inst::Nop | Inst::JustExtended { .. })
                    || inst.is_terminator()
                    || inst.has_side_effect()
                {
                    continue;
                }
                let Some(d) = inst.dst() else { continue };
                if defs_in.get(&d) != Some(&1) {
                    continue;
                }
                if inst.uses().iter().any(|u| defs_in.contains_key(u)) {
                    continue;
                }
                let dominates_all_uses = uses_in.get(&d).is_none_or(|us| {
                    us.iter().all(|&u| {
                        if u.block == b {
                            u.index > id.index
                        } else {
                            dom.dominates(b, u.block)
                        }
                    })
                });
                if !dominates_all_uses {
                    continue;
                }
                let exits_ok = exits.iter().all(|&(u, v)| {
                    dom.dominates(b, u) || !live.live_in(v).contains(d.index())
                });
                if !exits_ok {
                    continue;
                }
                candidates.push(id);
            }
        }
        if candidates.is_empty() {
            continue;
        }

        let header = l.header;
        let loop_blocks = l.blocks.clone();
        let outside_preds: Vec<BlockId> = cfg
            .preds(header)
            .iter()
            .copied()
            .filter(|p| !loop_blocks.contains(p))
            .collect();

        // Find or create the preheader.
        let preheader = if outside_preds.len() == 1
            && f.block(outside_preds[0]).successors() == vec![header]
        {
            outside_preds[0]
        } else {
            let ph = f.new_block();
            f.block_mut(ph).insts.push(Inst::Br { target: header });
            for p in outside_preds {
                let term = f
                    .block_mut(p)
                    .insts
                    .last_mut()
                    .expect("terminated block");
                retarget(term, header, ph);
            }
            ph
        };

        // Move the candidates, preserving their relative program order.
        let mut moved = 0;
        for id in candidates {
            let inst = f.delete_inst(id);
            let ph_insts = &mut f.block_mut(preheader).insts;
            let at = ph_insts.len() - 1; // before the terminator
            ph_insts.insert(at, inst);
            moved += 1;
        }
        return moved;
    }
    0
}

fn retarget(term: &mut Inst, from: BlockId, to: BlockId) {
    match term {
        Inst::Br { target } if *target == from => *target = to,
        Inst::CondBr { then_bb, else_bb, .. } => {
            if *then_bb == from {
                *then_bb = to;
            }
            if *else_bb == from {
                *else_bb = to;
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, verify_function};

    #[test]
    fn hoists_invariant_extend() {
        // r1 = extend(r0) inside the loop with r0 invariant: hoisted.
        let mut f = parse_function(
            "func @f(i32, i32) -> i64 {\n\
             b0:\n    br b1\n\
             b1:\n    r2 = extend.32 r0\n    r1 = add.i64 r1, r2\n    r3 = const.i32 1\n    r1 = sub.i64 r1, r3\n    condbr gt.i32 r1, r3, b1, b2\n\
             b2:\n    ret r1\n}\n",
        )
        .unwrap();
        let n = run(&mut f);
        assert!(n >= 1, "extend should be hoisted");
        verify_function(&f).unwrap();
        // The loop body must no longer contain the extend.
        let in_loop: usize = f.block(BlockId(1)).insts.iter().filter(|i| i.is_extend(None)).count();
        assert_eq!(in_loop, 0);
        assert_eq!(f.count_extends(None), 1);
    }

    #[test]
    fn does_not_hoist_variant() {
        // r0 is redefined in the loop: its extend is variant.
        let mut f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    br b1\n\
             b1:\n    r1 = const.i32 1\n    r0 = sub.i32 r0, r1\n    r0 = extend.32 r0\n    condbr gt.i32 r0, r1, b1, b2\n\
             b2:\n    ret r0\n}\n",
        )
        .unwrap();
        run(&mut f);
        // The constants may hoist, but the variant extend must stay put.
        assert!(f.block(BlockId(1)).insts.iter().any(|i| i.is_extend(None)));
    }

    #[test]
    fn does_not_hoist_past_live_exit() {
        // r2 defined in a conditional arm of the loop and live after the
        // loop: the def does not dominate the exit, must stay.
        let mut f = parse_function(
            "func @f(i32, i32) -> i64 {\n\
             b0:\n    br b1\n\
             b1:\n    condbr gt.i32 r0, r1, b2, b3\n\
             b2:\n    r2 = extend.32 r1\n    br b3\n\
             b3:\n    r4 = const.i32 1\n    r0 = sub.i32 r0, r4\n    condbr gt.i32 r0, r4, b1, b4\n\
             b4:\n    ret r2\n}\n",
        )
        .unwrap();
        run(&mut f);
        assert!(
            f.block(BlockId(2)).insts.iter().any(|i| i.is_extend(None)),
            "must not hoist: def doesn't dominate exit and r2 is live"
        );
    }

    #[test]
    fn does_not_hoist_trapping_ops() {
        let mut f = parse_function(
            "func @f(i32, i32) -> i32 {\n\
             b0:\n    br b1\n\
             b1:\n    r2 = div.i32 r0, r1\n    r3 = const.i32 1\n    r0 = sub.i32 r0, r3\n    condbr gt.i32 r0, r3, b1, b2\n\
             b2:\n    ret r2\n}\n",
        )
        .unwrap();
        // Division may trap, so it is excluded as side-effecting even
        // though its operands are invariant.
        run(&mut f);
        use sxe_ir::BinOp;
        assert!(f
            .block(BlockId(1))
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Bin { op: BinOp::Div, .. })));
    }

    #[test]
    fn creates_preheader_when_needed() {
        // Two outside predecessors of the header: a fresh preheader block
        // must be created.
        let mut f = parse_function(
            "func @f(i32, i32) -> i64 {\n\
             b0:\n    condbr gt.i32 r0, r1, b1, b2\n\
             b1:\n    br b3\n\
             b2:\n    br b3\n\
             b3:\n    r2 = extend.32 r1\n    r4 = const.i32 1\n    r0 = sub.i32 r0, r4\n    condbr gt.i32 r0, r4, b3, b4\n\
             b4:\n    ret r2\n}\n",
        )
        .unwrap();
        let before = f.blocks.len();
        let n = run(&mut f);
        assert!(n >= 1);
        assert_eq!(f.blocks.len(), before + 1, "preheader appended");
        verify_function(&f).unwrap();
        // The extend now lives in the new preheader.
        let ph = BlockId(before as u32);
        assert!(f.block(ph).insts.iter().any(|i| i.is_extend(None)));
    }

    #[test]
    fn nested_loops_hoist_to_outer() {
        let mut f = parse_function(
            "func @f(i32, i32, i32) -> i64 {\n\
             b0:\n    r3 = const.i64 0\n    br b1\n\
             b1:\n    condbr gt.i32 r0, r1, b2, b5\n\
             b2:\n    br b3\n\
             b3:\n    r3 = extend.32 r2\n    r4 = const.i32 1\n    r1 = add.i32 r1, r4\n    condbr lt.i32 r1, r0, b3, b4\n\
             b4:\n    r5 = const.i32 1\n    r0 = sub.i32 r0, r5\n    br b1\n\
             b5:\n    ret r3\n}\n",
        )
        .unwrap();
        let n = run(&mut f);
        assert!(n >= 1);
        verify_function(&f).unwrap();
        // The extend left the inner loop body.
        assert!(!f.block(BlockId(3)).insts.iter().any(|i| i.is_extend(None)));
    }
}
