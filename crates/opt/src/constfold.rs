//! Block-local constant folding and constant branch folding.
//!
//! Uses [`sxe_ir::eval`] — the same arithmetic as the VM — so folded
//! constants carry *exactly* the raw 64-bit bit patterns the unoptimized
//! code would have computed, including the modelled garbage upper bits of
//! 32-bit results.
//!
//! Folding a sign extension of a constant is the paper's step-2 example:
//! "when a constant is propagated as the source operand of a sign
//! extension, the sign extension will be changed to a copy instruction by
//! constant folding".

use std::collections::HashMap;

use sxe_ir::{eval, Function, Inst, Reg, Target, Ty, UnOp};

/// Fold constants in every block of `f`; returns the number of
/// instructions rewritten.
///
/// Folding is target-aware: on MIPS64 the canonicalizing 32-bit ALU ops
/// fold through [`eval::int_bin_on`]/[`eval::int_neg_on`], so the folded
/// constant is sign-extended exactly as the hardware would leave it.
pub fn run(f: &mut Function, target: Target) -> usize {
    let mut changed = 0;
    for b in 0..f.blocks.len() {
        let mut consts: HashMap<Reg, i64> = HashMap::new();
        let insts = &mut f.blocks[b].insts;
        for inst in insts.iter_mut() {
            let get = |consts: &HashMap<Reg, i64>, r: Reg| consts.get(&r).copied();
            let mut folded: Option<(Reg, i64, Ty)> = None;
            let mut folded_f: Option<(Reg, f64)> = None;
            match *inst {
                Inst::Const { dst, value, .. } => {
                    consts.insert(dst, value);
                    continue;
                }
                Inst::ConstF { dst, value } => {
                    consts.insert(dst, value.to_bits() as i64);
                    continue;
                }
                Inst::Copy { dst, src, .. } => {
                    // Keep the copy (copy propagation's job) but learn the
                    // constant.
                    match get(&consts, src) {
                        Some(v) => {
                            consts.insert(dst, v);
                        }
                        None => {
                            consts.remove(&dst);
                        }
                    }
                    continue;
                }
                Inst::Extend { dst, src, from } => {
                    if let Some(v) = get(&consts, src) {
                        folded = Some((dst, from.sign_extend(v), from.ty()));
                    }
                }
                Inst::Un { op, ty, dst, src } => {
                    if let Some(v) = get(&consts, src) {
                        match op {
                            UnOp::Neg if ty != Ty::F64 => {
                                folded = Some((dst, eval::int_neg_on(v, ty, target), ty));
                            }
                            UnOp::Not if ty != Ty::F64 => folded = Some((dst, !v, ty)),
                            UnOp::Zext(w) => folded = Some((dst, eval::zext(w, v), ty)),
                            UnOp::I32ToF64 | UnOp::I64ToF64 => {
                                folded_f = Some((dst, v as f64));
                            }
                            UnOp::F64ToI32 => {
                                folded = Some((dst, eval::d2i(f64::from_bits(v as u64)), Ty::I32));
                            }
                            UnOp::F64ToI64 => {
                                folded = Some((dst, eval::d2l(f64::from_bits(v as u64)), Ty::I64));
                            }
                            UnOp::FNeg => folded_f = Some((dst, -f64::from_bits(v as u64))),
                            UnOp::FAbs => {
                                folded_f = Some((dst, f64::from_bits(v as u64).abs()));
                            }
                            UnOp::FSqrt => {
                                folded_f = Some((dst, f64::from_bits(v as u64).sqrt()));
                            }
                            UnOp::Neg | UnOp::Not => {}
                        }
                    }
                }
                Inst::Bin { op, ty, dst, lhs, rhs } => {
                    if let (Some(a), Some(b)) = (get(&consts, lhs), get(&consts, rhs)) {
                        if ty == Ty::F64 {
                            if let Some(r) =
                                eval::f64_bin(op, f64::from_bits(a as u64), f64::from_bits(b as u64))
                            {
                                folded_f = Some((dst, r));
                            }
                        } else if let Some(v) = eval::int_bin_on(op, a, b, ty, target) {
                            // Division by zero is not folded: the trap is
                            // observable behaviour.
                            folded = Some((dst, v, ty));
                        }
                    }
                }
                Inst::Setcc { cond, ty, dst, lhs, rhs } => {
                    if let (Some(a), Some(b)) = (get(&consts, lhs), get(&consts, rhs)) {
                        let t = if ty == Ty::F64 {
                            cond.eval_f64(f64::from_bits(a as u64), f64::from_bits(b as u64))
                        } else {
                            eval::int_cond(cond, ty, a, b)
                        };
                        folded = Some((dst, t as i64, Ty::I32));
                    }
                }
                Inst::CondBr { cond, ty, lhs, rhs, then_bb, else_bb } => {
                    if let (Some(a), Some(b)) = (get(&consts, lhs), get(&consts, rhs)) {
                        let t = if ty == Ty::F64 {
                            cond.eval_f64(f64::from_bits(a as u64), f64::from_bits(b as u64))
                        } else {
                            eval::int_cond(cond, ty, a, b)
                        };
                        *inst = Inst::Br { target: if t { then_bb } else { else_bb } };
                        changed += 1;
                        continue;
                    }
                }
                _ => {}
            }
            if let Some((dst, value, ty)) = folded {
                *inst = Inst::Const { dst, value, ty };
                consts.insert(dst, value);
                changed += 1;
            } else if let Some((dst, value)) = folded_f {
                *inst = Inst::ConstF { dst, value };
                consts.insert(dst, value.to_bits() as i64);
                changed += 1;
            } else if let Some(d) = inst.dst() {
                consts.remove(&d);
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, BlockId};

    fn fold(src: &str) -> (Function, usize) {
        fold_on(src, Target::Ia64)
    }

    fn fold_on(src: &str, target: Target) -> (Function, usize) {
        let mut f = parse_function(src).unwrap();
        let n = run(&mut f, target);
        (f, n)
    }

    #[test]
    fn folds_extend_of_constant() {
        let (f, n) = fold(
            "func @f() -> i32 {\n\
             b0:\n    r0 = const.i32 -7\n    r0 = extend.32 r0\n    ret r0\n}\n",
        );
        assert_eq!(n, 1);
        assert_eq!(f.count_extends(None), 0);
        assert!(matches!(f.inst(sxe_ir::InstId::new(BlockId(0), 1)), Inst::Const { value: -7, .. }));
    }

    #[test]
    fn folds_arithmetic_with_raw_bits() {
        let (f, n) = fold(
            "func @f() -> i32 {\n\
             b0:\n    r0 = const.i32 2147483647\n    r1 = const.i32 1\n    r2 = add.i32 r0, r1\n    ret r2\n}\n",
        );
        assert_eq!(n, 1);
        // The folded constant keeps the raw 64-bit sum (not sign-extended),
        // matching what the machine would compute.
        match f.inst(sxe_ir::InstId::new(BlockId(0), 2)) {
            Inst::Const { value, .. } => assert_eq!(*value, 0x8000_0000),
            other => panic!("expected const, got {other:?}"),
        }
    }

    #[test]
    fn folds_arithmetic_canonically_on_mips64() {
        // Same overflow as above: on MIPS64 `addu` writes the result
        // sign-extended from bit 31, and folding must mirror that.
        let (f, n) = fold_on(
            "func @f() -> i32 {\n\
             b0:\n    r0 = const.i32 2147483647\n    r1 = const.i32 1\n    r2 = add.i32 r0, r1\n    ret r2\n}\n",
            Target::Mips64,
        );
        assert_eq!(n, 1);
        match f.inst(sxe_ir::InstId::new(BlockId(0), 2)) {
            Inst::Const { value, .. } => assert_eq!(*value, i32::MIN as i64),
            other => panic!("expected const, got {other:?}"),
        }
    }

    #[test]
    fn does_not_fold_div_by_zero() {
        let (f, n) = fold(
            "func @f() -> i32 {\n\
             b0:\n    r0 = const.i32 5\n    r1 = const.i32 0\n    r2 = div.i32 r0, r1\n    ret r2\n}\n",
        );
        assert_eq!(n, 0);
        assert!(matches!(
            f.inst(sxe_ir::InstId::new(BlockId(0), 2)),
            Inst::Bin { .. }
        ));
    }

    #[test]
    fn folds_branches() {
        let (f, n) = fold(
            "func @f() -> i32 {\n\
             b0:\n    r0 = const.i32 1\n    r1 = const.i32 2\n    condbr lt.i32 r0, r1, b1, b2\n\
             b1:\n    ret r0\n\
             b2:\n    ret r1\n}\n",
        );
        assert_eq!(n, 1);
        assert!(matches!(
            f.inst(sxe_ir::InstId::new(BlockId(0), 2)),
            Inst::Br { target: BlockId(1) }
        ));
    }

    #[test]
    fn state_resets_across_blocks() {
        // r0's constness in b0 must not leak into b2 (reached from two
        // different defs of r0).
        let (_, n) = fold(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 4\n    condbr lt.i32 r0, r1, b1, b2\n\
             b1:\n    r1 = add.i32 r0, r0\n    br b2\n\
             b2:\n    r2 = add.i32 r1, r1\n    ret r2\n}\n",
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn folds_setcc_and_float() {
        let (f, n) = fold(
            "func @f() -> f64 {\n\
             b0:\n    r0 = constf 2.0\n    r1 = constf 3.0\n    r2 = mul.f64 r0, r1\n    ret r2\n}\n",
        );
        assert_eq!(n, 1);
        match f.inst(sxe_ir::InstId::new(BlockId(0), 2)) {
            Inst::ConstF { value, .. } => assert_eq!(*value, 6.0),
            other => panic!("expected constf, got {other:?}"),
        }
    }

    #[test]
    fn constant_through_copy() {
        let (f, n) = fold(
            "func @f() -> i32 {\n\
             b0:\n    r0 = const.i32 21\n    r1 = copy.i32 r0\n    r2 = add.i32 r1, r1\n    ret r2\n}\n",
        );
        assert_eq!(n, 1);
        match f.inst(sxe_ir::InstId::new(BlockId(0), 2)) {
            Inst::Const { value, .. } => assert_eq!(*value, 42),
            other => panic!("expected const, got {other:?}"),
        }
    }
}
