//! Function inlining.
//!
//! A standard step-2 optimization: small leaf callees are expanded at
//! their call sites. For the extension analyses this is more than a code
//! size trade — it makes callee index arithmetic visible to the caller's
//! value ranges and facts (a `rec * FIELDS + f` inside a helper becomes
//! analyzable once the call boundary disappears).
//!
//! Semantics: a `call` passes raw 64-bit register values and a `ret`
//! returns one, so inlining lowers to plain copies — argument copies
//! into the (remapped) parameter registers, and a result copy at each
//! return. Only *leaf* callees (no calls of their own) under a size
//! threshold are expanded, which rules out recursion by construction.

use sxe_ir::{BlockId, FuncId, Function, Inst, InstId, Module, Reg, Ty};

/// Inlining policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InlineOpts {
    /// Maximum callee size (non-tombstone instructions).
    pub max_callee_insts: usize,
    /// Maximum call sites expanded per caller (bounds code growth).
    pub max_sites_per_caller: usize,
}

impl Default for InlineOpts {
    fn default() -> InlineOpts {
        InlineOpts { max_callee_insts: 48, max_sites_per_caller: 24 }
    }
}

/// Expand eligible call sites in every function; returns the number of
/// sites inlined.
pub fn run_module(m: &mut Module, opts: &InlineOpts) -> usize {
    let mut total = 0;
    // Decide eligibility up front on the original bodies (callees are
    // not mutated by inlining into their callers, since only leaves are
    // inlined).
    let eligible: Vec<bool> = m
        .functions
        .iter()
        .map(|g| is_leaf(g) && g.inst_count() <= opts.max_callee_insts)
        .collect();
    for fi in 0..m.functions.len() {
        let mut sites = 0;
        while sites < opts.max_sites_per_caller {
            let Some((site, callee)) = find_site(&m.functions[fi], fi, &eligible) else {
                break;
            };
            let callee_clone = m.functions[callee.index()].clone();
            inline_at(&mut m.functions[fi], &callee_clone, site);
            sites += 1;
            total += 1;
        }
    }
    total
}

fn is_leaf(g: &Function) -> bool {
    !g.insts().any(|(_, i)| matches!(i, Inst::Call { .. }))
}

fn find_site(f: &Function, self_index: usize, eligible: &[bool]) -> Option<(InstId, FuncId)> {
    for (id, inst) in f.insts() {
        if let Inst::Call { func, .. } = inst {
            if func.index() != self_index && eligible[func.index()] {
                return Some((id, *func));
            }
        }
    }
    None
}

/// Expand one call site. The caller block is split at the call; the
/// callee's blocks are appended with registers and targets remapped.
fn inline_at(f: &mut Function, callee: &Function, site: InstId) {
    let (dst, args) = match f.inst(site) {
        Inst::Call { dst, args, .. } => (*dst, args.clone()),
        other => panic!("not a call site at {site}: {other:?}"),
    };
    assert_eq!(args.len(), callee.params.len(), "arity checked by the verifier");

    let reg_base = f.reg_count;
    f.reg_count += callee.reg_count;
    let map_reg = |r: Reg| Reg(reg_base + r.0);
    let block_base = f.blocks.len() as u32;
    let map_block = |b: BlockId| BlockId(block_base + b.0);
    let cont = BlockId(block_base + callee.blocks.len() as u32);

    // Clone and remap the callee body; rewrite returns into copies plus
    // branches to the continuation.
    for cb in &callee.blocks {
        let mut insts = Vec::with_capacity(cb.insts.len() + 1);
        for inst in &cb.insts {
            match inst {
                Inst::Nop => {}
                Inst::Ret { value } => {
                    if let (Some(d), Some(v)) = (dst, value) {
                        let ty = callee.ret.unwrap_or(Ty::I64);
                        insts.push(Inst::Copy { dst: d, src: map_reg(*v), ty });
                    }
                    insts.push(Inst::Br { target: cont });
                }
                other => {
                    let mut cloned = other.clone();
                    cloned.map_regs(map_reg);
                    cloned.map_blocks(map_block);
                    insts.push(cloned);
                }
            }
        }
        f.blocks.push(sxe_ir::Block { insts });
    }

    // Split the caller block: everything after the call moves to `cont`.
    let caller_block = &mut f.blocks[site.block.index()].insts;
    let tail = caller_block.split_off(site.index as usize + 1);
    caller_block.pop(); // the call itself
    for (&arg, &(preg, ty)) in args.iter().zip(&callee.params) {
        caller_block.push(Inst::Copy { dst: map_reg(preg), src: arg, ty });
    }
    caller_block.push(Inst::Br { target: map_block(callee.entry()) });
    f.blocks.push(sxe_ir::Block { insts: tail });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_module, verify_module, Target};

    const CALLER_CALLEE: &str = "\
func @double(i32) -> i32 {
b0:
    r1 = add.i32 r0, r0
    ret r1
}
func @main(i32) -> i32 {
b0:
    r1 = call @double(r0)
    r2 = call @double(r1)
    ret r2
}
";

    fn run_vm(m: &Module, arg: i64) -> Option<i64> {
        let mut vm = sxe_vm::Vm::new(m, Target::Ia64);
        vm.run("main", &[arg]).expect("no trap").ret
    }

    #[test]
    fn inlines_leaf_and_preserves_semantics() {
        let mut m = parse_module(CALLER_CALLEE).unwrap();
        let before = run_vm(&m, 5);
        let n = run_module(&mut m, &InlineOpts::default());
        assert_eq!(n, 2);
        verify_module(&m).unwrap();
        let main = m.function(m.function_by_name("main").unwrap());
        assert!(is_leaf(main), "both calls expanded:\n{main}");
        assert_eq!(run_vm(&m, 5), before);
        assert_eq!(before, Some(20));
    }

    #[test]
    fn recursive_function_not_inlined() {
        let mut m = parse_module(
            "func @main(i32) -> i32 {\n\
             b0:\n    r1 = call @main(r0)\n    ret r1\n}\n",
        )
        .unwrap();
        assert_eq!(run_module(&mut m, &InlineOpts::default()), 0);
    }

    #[test]
    fn size_threshold_respected() {
        let mut m = parse_module(CALLER_CALLEE).unwrap();
        let opts = InlineOpts { max_callee_insts: 1, max_sites_per_caller: 24 };
        assert_eq!(run_module(&mut m, &opts), 0);
    }

    #[test]
    fn void_callee_with_side_effects() {
        let mut m = parse_module(
            "func @store(i64, i32, i32) {\n\
             b0:\n    astore.i32 r0, r1, r2\n    ret\n}\n\
             func @main(i32) -> i32 {\n\
             b0:\n    r1 = newarray.i32 r0\n    r2 = const.i32 3\n    r3 = const.i32 42\n    call @store(r1, r2, r3)\n    r4 = aload.i32 r1, r2\n    ret r4\n}\n",
        )
        .unwrap();
        let before = run_vm(&m, 8);
        assert_eq!(run_module(&mut m, &InlineOpts::default()), 1);
        verify_module(&m).unwrap();
        assert_eq!(run_vm(&m, 8), before);
        assert_eq!(before, Some(42));
    }

    #[test]
    fn callee_with_branches_inlines() {
        let mut m = parse_module(
            "func @abs(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 0\n    condbr lt.i32 r0, r1, b1, b2\n\
             b1:\n    r2 = neg.i32 r0\n    ret r2\n\
             b2:\n    ret r0\n}\n\
             func @main(i32) -> i32 {\n\
             b0:\n    r1 = call @abs(r0)\n    ret r1\n}\n",
        )
        .unwrap();
        assert_eq!(run_module(&mut m, &InlineOpts::default()), 1);
        verify_module(&m).unwrap();
        assert_eq!(run_vm(&m, -7), Some(7));
        assert_eq!(run_vm(&m, 9), Some(9));
    }
}
