//! Algebraic simplifications (strength reduction to copies/constants).
//!
//! All rewrites preserve the *raw 64-bit* semantics of the machine model,
//! not just the low 32 bits: e.g. `x + 0` at width 32 is a full 64-bit
//! add of zero, so replacing it with a full-register copy is exact.
//!
//! On MIPS64 the narrow arithmetic/shift ops canonicalize (sign-extend
//! their result from bit 31), so an "identity" like `x + 0` is not a
//! register copy there — it is exactly `extend.32 x`, and is rewritten to
//! that residue instead, where sign-extension elimination can remove it.

use std::collections::HashMap;

use sxe_ir::{BinOp, Function, Inst, Reg, Target, Ty, Width};

/// Apply algebraic identities in every block; returns the number of
/// instructions rewritten.
pub fn run(f: &mut Function, target: Target) -> usize {
    let mut changed = 0;
    for b in 0..f.blocks.len() {
        let mut consts: HashMap<Reg, i64> = HashMap::new();
        for inst in f.blocks[b].insts.iter_mut() {
            let get = |consts: &HashMap<Reg, i64>, r: Reg| consts.get(&r).copied();
            // The rewrite for a narrow op whose *value* behaviour is the
            // identity: a full-register copy where the op leaves raw upper
            // bits (IA64/PPC64), the explicit sign-extension residue where
            // it canonicalizes (MIPS64). `extend.32` is exact for every
            // narrow width because the MIPS 32-bit ALU always extends
            // from bit 31.
            let identity = |dst: Reg, src: Reg, ty: Ty| {
                if target == Target::Mips64 && ty != Ty::I64 {
                    Inst::Extend { dst, src, from: Width::W32 }
                } else {
                    Inst::Copy { dst, src, ty }
                }
            };
            let rewrite: Option<Inst> = match *inst {
                Inst::Const { dst, value, .. } => {
                    consts.insert(dst, value);
                    None
                }
                Inst::Bin { op, ty, dst, lhs, rhs } if ty != Ty::F64 => {
                    let lc = get(&consts, lhs);
                    let rc = get(&consts, rhs);
                    match op {
                        // x + 0 and 0 + x: the 64-bit add of a zero
                        // register is an exact register copy (a
                        // canonicalizing extend on MIPS64).
                        BinOp::Add if rc == Some(0) => Some(identity(dst, lhs, ty)),
                        BinOp::Add if lc == Some(0) => Some(identity(dst, rhs, ty)),
                        BinOp::Sub if rc == Some(0) => Some(identity(dst, lhs, ty)),
                        // x - x == 0 and x ^ x == 0 exactly (raw bits;
                        // canonical zero is zero on MIPS64 too).
                        BinOp::Sub | BinOp::Xor if lhs == rhs => {
                            Some(Inst::Const { dst, value: 0, ty })
                        }
                        BinOp::Mul if rc == Some(1) => Some(identity(dst, lhs, ty)),
                        BinOp::Mul if lc == Some(1) => Some(identity(dst, rhs, ty)),
                        // x * 0 == 0 exactly.
                        BinOp::Mul if rc == Some(0) || lc == Some(0) => {
                            Some(Inst::Const { dst, value: 0, ty })
                        }
                        // Bitwise ops are raw 64-bit register ops on every
                        // target (MIPS has no 32-bit and/or/xor), so these
                        // stay plain copies.
                        // x & -1 (all 64 bits set) and x | 0: exact.
                        BinOp::And if rc == Some(-1) => {
                            Some(Inst::Copy { dst, src: lhs, ty })
                        }
                        BinOp::And if lc == Some(-1) => {
                            Some(Inst::Copy { dst, src: rhs, ty })
                        }
                        BinOp::And | BinOp::Or if lhs == rhs => {
                            Some(Inst::Copy { dst, src: lhs, ty })
                        }
                        BinOp::And if rc == Some(0) || lc == Some(0) => {
                            Some(Inst::Const { dst, value: 0, ty })
                        }
                        BinOp::Or | BinOp::Xor if rc == Some(0) => {
                            Some(Inst::Copy { dst, src: lhs, ty })
                        }
                        BinOp::Or | BinOp::Xor if lc == Some(0) => {
                            Some(Inst::Copy { dst, src: rhs, ty })
                        }
                        // Shifts by zero are full-register identities
                        // (canonicalizing on MIPS64: `sll x, 0` is the
                        // hardware's own re-canonicalization idiom).
                        BinOp::Shl | BinOp::Shr if rc == Some(0) => {
                            Some(identity(dst, lhs, ty))
                        }
                        // shru.32 by 0 still extracts the low 32 bits
                        // (zero-extends) on IA64/PPC64, so it is NOT an
                        // identity at width 32 there; it is at width 64,
                        // and on MIPS64 `srl x, 0` sign-extends like the
                        // other narrow shifts.
                        BinOp::Shru if rc == Some(0) && ty == Ty::I64 => {
                            Some(Inst::Copy { dst, src: lhs, ty })
                        }
                        BinOp::Shru if rc == Some(0) && target == Target::Mips64 => {
                            Some(identity(dst, lhs, ty))
                        }
                        _ => None,
                    }
                }
                _ => None,
            };
            if let Some(new_inst) = rewrite {
                *inst = new_inst;
                changed += 1;
            }
            if let Some(d) = inst.dst() {
                if !matches!(inst, Inst::Const { .. }) {
                    consts.remove(&d);
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, BlockId, InstId};

    fn simplified(src: &str, idx: usize) -> Inst {
        simplified_on(src, idx, Target::Ia64)
    }

    fn simplified_on(src: &str, idx: usize, target: Target) -> Inst {
        let mut f = parse_function(src).unwrap();
        run(&mut f, target);
        f.inst(InstId::new(BlockId(0), idx)).clone()
    }

    #[test]
    fn add_zero_becomes_copy() {
        let i = simplified(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 0\n    r2 = add.i32 r0, r1\n    ret r2\n}\n",
            1,
        );
        assert!(matches!(i, Inst::Copy { src: Reg(0), .. }));
    }

    #[test]
    fn xor_self_becomes_zero() {
        let i = simplified(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = xor.i32 r0, r0\n    ret r1\n}\n",
            0,
        );
        assert!(matches!(i, Inst::Const { value: 0, .. }));
    }

    #[test]
    fn mul_one_and_zero() {
        let i = simplified(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 1\n    r2 = mul.i32 r0, r1\n    ret r2\n}\n",
            1,
        );
        assert!(matches!(i, Inst::Copy { src: Reg(0), .. }));
        let i = simplified(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 0\n    r2 = mul.i32 r1, r0\n    ret r2\n}\n",
            1,
        );
        assert!(matches!(i, Inst::Const { value: 0, .. }));
    }

    #[test]
    fn shru32_by_zero_not_identity() {
        // shru.i32 by 0 zero-extends the low 32 bits — not a plain copy.
        let i = simplified(
            "func @f(i32) -> i64 {\n\
             b0:\n    r1 = const.i32 0\n    r2 = shru.i32 r0, r1\n    ret r2\n}\n",
            1,
        );
        assert!(matches!(i, Inst::Bin { op: BinOp::Shru, .. }));
        let i = simplified(
            "func @f(i64) -> i64 {\n\
             b0:\n    r1 = const.i64 0\n    r2 = shru.i64 r0, r1\n    ret r2\n}\n",
            1,
        );
        assert!(matches!(i, Inst::Copy { .. }));
    }

    #[test]
    fn and_minus_one_is_copy() {
        let i = simplified(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 -1\n    r2 = and.i32 r0, r1\n    ret r2\n}\n",
            1,
        );
        assert!(matches!(i, Inst::Copy { src: Reg(0), .. }));
    }

    #[test]
    fn float_untouched() {
        let mut f = parse_function(
            "func @f(f64) -> f64 {\n\
             b0:\n    r1 = constf 0.0\n    r2 = add.f64 r0, r1\n    ret r2\n}\n",
        )
        .unwrap();
        // x + 0.0 is NOT an identity for floats (-0.0 + 0.0 == +0.0).
        assert_eq!(run(&mut f, Target::Ia64), 0);
    }

    #[test]
    fn mips64_identities_become_extends() {
        // On MIPS64 `addu x, 0` sign-extends x from bit 31, so the
        // identity rewrite must be `extend.32`, not a register copy.
        let i = simplified_on(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 0\n    r2 = add.i32 r0, r1\n    ret r2\n}\n",
            1,
            Target::Mips64,
        );
        assert!(matches!(i, Inst::Extend { src: Reg(0), from: Width::W32, .. }));
        // srl by 0 canonicalizes on MIPS64 — rewritable there, kept on IA64.
        let i = simplified_on(
            "func @f(i32) -> i64 {\n\
             b0:\n    r1 = const.i32 0\n    r2 = shru.i32 r0, r1\n    ret r2\n}\n",
            1,
            Target::Mips64,
        );
        assert!(matches!(i, Inst::Extend { src: Reg(0), from: Width::W32, .. }));
        // 64-bit identities and bitwise identities stay full-register copies.
        let i = simplified_on(
            "func @f(i64) -> i64 {\n\
             b0:\n    r1 = const.i64 0\n    r2 = add.i64 r0, r1\n    ret r2\n}\n",
            1,
            Target::Mips64,
        );
        assert!(matches!(i, Inst::Copy { src: Reg(0), .. }));
        let i = simplified_on(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 0\n    r2 = or.i32 r0, r1\n    ret r2\n}\n",
            1,
            Target::Mips64,
        );
        assert!(matches!(i, Inst::Copy { src: Reg(0), .. }));
    }
}
