//! Algebraic simplifications (strength reduction to copies/constants).
//!
//! All rewrites preserve the *raw 64-bit* semantics of the machine model,
//! not just the low 32 bits: e.g. `x + 0` at width 32 is a full 64-bit
//! add of zero, so replacing it with a full-register copy is exact.

use std::collections::HashMap;

use sxe_ir::{BinOp, Function, Inst, Reg, Ty};

/// Apply algebraic identities in every block; returns the number of
/// instructions rewritten.
pub fn run(f: &mut Function) -> usize {
    let mut changed = 0;
    for b in 0..f.blocks.len() {
        let mut consts: HashMap<Reg, i64> = HashMap::new();
        for inst in f.blocks[b].insts.iter_mut() {
            let get = |consts: &HashMap<Reg, i64>, r: Reg| consts.get(&r).copied();
            let rewrite: Option<Inst> = match *inst {
                Inst::Const { dst, value, .. } => {
                    consts.insert(dst, value);
                    None
                }
                Inst::Bin { op, ty, dst, lhs, rhs } if ty != Ty::F64 => {
                    let lc = get(&consts, lhs);
                    let rc = get(&consts, rhs);
                    match op {
                        // x + 0 and 0 + x: the 64-bit add of a zero
                        // register is an exact register copy.
                        BinOp::Add if rc == Some(0) => {
                            Some(Inst::Copy { dst, src: lhs, ty })
                        }
                        BinOp::Add if lc == Some(0) => {
                            Some(Inst::Copy { dst, src: rhs, ty })
                        }
                        BinOp::Sub if rc == Some(0) => {
                            Some(Inst::Copy { dst, src: lhs, ty })
                        }
                        // x - x == 0 and x ^ x == 0 exactly (raw bits).
                        BinOp::Sub | BinOp::Xor if lhs == rhs => {
                            Some(Inst::Const { dst, value: 0, ty })
                        }
                        BinOp::Mul if rc == Some(1) => {
                            Some(Inst::Copy { dst, src: lhs, ty })
                        }
                        BinOp::Mul if lc == Some(1) => {
                            Some(Inst::Copy { dst, src: rhs, ty })
                        }
                        // x * 0 == 0 exactly.
                        BinOp::Mul if rc == Some(0) || lc == Some(0) => {
                            Some(Inst::Const { dst, value: 0, ty })
                        }
                        // x & -1 (all 64 bits set) and x | 0: exact.
                        BinOp::And if rc == Some(-1) => {
                            Some(Inst::Copy { dst, src: lhs, ty })
                        }
                        BinOp::And if lc == Some(-1) => {
                            Some(Inst::Copy { dst, src: rhs, ty })
                        }
                        BinOp::And | BinOp::Or if lhs == rhs => {
                            Some(Inst::Copy { dst, src: lhs, ty })
                        }
                        BinOp::And if rc == Some(0) || lc == Some(0) => {
                            Some(Inst::Const { dst, value: 0, ty })
                        }
                        BinOp::Or | BinOp::Xor if rc == Some(0) => {
                            Some(Inst::Copy { dst, src: lhs, ty })
                        }
                        BinOp::Or | BinOp::Xor if lc == Some(0) => {
                            Some(Inst::Copy { dst, src: rhs, ty })
                        }
                        // Shifts by zero are full-register identities.
                        BinOp::Shl | BinOp::Shr if rc == Some(0) => {
                            Some(Inst::Copy { dst, src: lhs, ty })
                        }
                        // shru.32 by 0 still extracts the low 32 bits
                        // (zero-extends), so it is NOT an identity at
                        // width 32; it is at width 64.
                        BinOp::Shru if rc == Some(0) && ty == Ty::I64 => {
                            Some(Inst::Copy { dst, src: lhs, ty })
                        }
                        _ => None,
                    }
                }
                _ => None,
            };
            if let Some(new_inst) = rewrite {
                *inst = new_inst;
                changed += 1;
            }
            if let Some(d) = inst.dst() {
                if !matches!(inst, Inst::Const { .. }) {
                    consts.remove(&d);
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, BlockId, InstId};

    fn simplified(src: &str, idx: usize) -> Inst {
        let mut f = parse_function(src).unwrap();
        run(&mut f);
        f.inst(InstId::new(BlockId(0), idx)).clone()
    }

    #[test]
    fn add_zero_becomes_copy() {
        let i = simplified(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 0\n    r2 = add.i32 r0, r1\n    ret r2\n}\n",
            1,
        );
        assert!(matches!(i, Inst::Copy { src: Reg(0), .. }));
    }

    #[test]
    fn xor_self_becomes_zero() {
        let i = simplified(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = xor.i32 r0, r0\n    ret r1\n}\n",
            0,
        );
        assert!(matches!(i, Inst::Const { value: 0, .. }));
    }

    #[test]
    fn mul_one_and_zero() {
        let i = simplified(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 1\n    r2 = mul.i32 r0, r1\n    ret r2\n}\n",
            1,
        );
        assert!(matches!(i, Inst::Copy { src: Reg(0), .. }));
        let i = simplified(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 0\n    r2 = mul.i32 r1, r0\n    ret r2\n}\n",
            1,
        );
        assert!(matches!(i, Inst::Const { value: 0, .. }));
    }

    #[test]
    fn shru32_by_zero_not_identity() {
        // shru.i32 by 0 zero-extends the low 32 bits — not a plain copy.
        let i = simplified(
            "func @f(i32) -> i64 {\n\
             b0:\n    r1 = const.i32 0\n    r2 = shru.i32 r0, r1\n    ret r2\n}\n",
            1,
        );
        assert!(matches!(i, Inst::Bin { op: BinOp::Shru, .. }));
        let i = simplified(
            "func @f(i64) -> i64 {\n\
             b0:\n    r1 = const.i64 0\n    r2 = shru.i64 r0, r1\n    ret r2\n}\n",
            1,
        );
        assert!(matches!(i, Inst::Copy { .. }));
    }

    #[test]
    fn and_minus_one_is_copy() {
        let i = simplified(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 -1\n    r2 = and.i32 r0, r1\n    ret r2\n}\n",
            1,
        );
        assert!(matches!(i, Inst::Copy { src: Reg(0), .. }));
    }

    #[test]
    fn float_untouched() {
        let mut f = parse_function(
            "func @f(f64) -> f64 {\n\
             b0:\n    r1 = constf 0.0\n    r2 = add.f64 r0, r1\n    ret r2\n}\n",
        )
        .unwrap();
        // x + 0.0 is NOT an identity for floats (-0.0 + 0.0 == +0.0).
        assert_eq!(run(&mut f), 0);
    }
}
