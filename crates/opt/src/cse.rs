//! Block-local common-subexpression elimination.
//!
//! The paper applies CSE/PRE to sign extensions in step 2 ("Sign extension
//! is also applied to common sub-expression elimination"); this local CSE
//! turns a repeated `extend` (or any pure expression) over unchanged
//! operands into a copy.

use std::collections::HashMap;

use sxe_ir::{BinOp, Cond, Function, Inst, Reg, Ty, UnOp, Width};

/// A hashable key describing a pure computation over specific registers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ExprKey {
    Bin(BinOp, Ty, Reg, Reg),
    Un(UnOp, Ty, Reg),
    Setcc(Cond, Ty, Reg, Reg),
    Extend(Width, Reg),
    Const(Ty, i64),
    ConstF(u64),
}

fn key_of(inst: &Inst) -> Option<(ExprKey, Reg)> {
    match *inst {
        Inst::Bin { op, ty, dst, lhs, rhs } if !op.may_trap() => {
            // Canonicalize commutative operand order.
            let (a, b) = if op.is_commutative() && rhs < lhs { (rhs, lhs) } else { (lhs, rhs) };
            Some((ExprKey::Bin(op, ty, a, b), dst))
        }
        Inst::Un { op, ty, dst, src } => Some((ExprKey::Un(op, ty, src), dst)),
        Inst::Setcc { cond, ty, dst, lhs, rhs } => {
            Some((ExprKey::Setcc(cond, ty, lhs, rhs), dst))
        }
        Inst::Extend { dst, src, from } => Some((ExprKey::Extend(from, src), dst)),
        Inst::Const { dst, value, ty } => Some((ExprKey::Const(ty, value), dst)),
        Inst::ConstF { dst, value } => Some((ExprKey::ConstF(value.to_bits()), dst)),
        _ => None,
    }
}

fn key_operands(k: &ExprKey) -> Vec<Reg> {
    match *k {
        ExprKey::Bin(_, _, a, b) | ExprKey::Setcc(_, _, a, b) => vec![a, b],
        ExprKey::Un(_, _, a) | ExprKey::Extend(_, a) => vec![a],
        ExprKey::Const(..) | ExprKey::ConstF(..) => Vec::new(),
    }
}

/// Run local CSE; returns the number of instructions replaced by copies.
pub fn run(f: &mut Function) -> usize {
    let mut changed = 0;
    for b in 0..f.blocks.len() {
        let mut available: HashMap<ExprKey, Reg> = HashMap::new();
        for inst in f.blocks[b].insts.iter_mut() {
            if matches!(inst, Inst::Nop) {
                continue;
            }
            let keyed = key_of(inst);
            if let Some((ref key, dst)) = keyed {
                if let Some(&holder) = available.get(key) {
                    if holder != dst {
                        let ty = match *key {
                            ExprKey::Bin(_, ty, ..)
                            | ExprKey::Un(_, ty, _)
                            | ExprKey::Const(ty, _) => ty,
                            // Setcc and Extend dsts are narrow-kind
                            // registers (`infer_kinds` classifies them
                            // Int32 regardless of the instruction ty), and
                            // an integer copy moves the full register at
                            // any ty — so the copy must stay at i32 or it
                            // would flip the register's kind to Wide.
                            ExprKey::Setcc(..) | ExprKey::Extend(..) => Ty::I32,
                            ExprKey::ConstF(_) => Ty::F64,
                        };
                        *inst = Inst::Copy { dst, src: holder, ty };
                        changed += 1;
                    }
                }
            }
            // Invalidate everything involving the defined register, then
            // record the new expression.
            if let Some(d) = inst.dst() {
                available.retain(|k, &mut holder| holder != d && !key_operands(k).contains(&d));
            }
            if let Some((key, dst)) = key_of(inst) {
                available.entry(key).or_insert(dst);
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, BlockId, InstId};

    #[test]
    fn duplicate_extend_becomes_copy() {
        let mut f = parse_function(
            "func @f(i32) -> i64 {\n\
             b0:\n    r1 = extend.32 r0\n    r2 = extend.32 r0\n    r3 = add.i64 r1, r2\n    ret r3\n}\n",
        )
        .unwrap();
        assert_eq!(run(&mut f), 1);
        assert_eq!(f.count_extends(None), 1);
        assert!(matches!(
            f.inst(InstId::new(BlockId(0), 1)),
            Inst::Copy { src: Reg(1), .. }
        ));
    }

    #[test]
    fn redefined_operand_blocks_cse() {
        let mut f = parse_function(
            "func @f(i32) -> i64 {\n\
             b0:\n    r1 = extend.32 r0\n    r0 = add.i32 r0, r0\n    r2 = extend.32 r0\n    ret r2\n}\n",
        )
        .unwrap();
        assert_eq!(run(&mut f), 0);
    }

    #[test]
    fn in_place_extend_not_csed() {
        // r0 = extend(r0) twice: the first redefines r0, so the second's
        // operand differs.
        let mut f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r0 = extend.32 r0\n    r0 = extend.32 r0\n    ret r0\n}\n",
        )
        .unwrap();
        assert_eq!(run(&mut f), 0);
    }

    #[test]
    fn extend_cse_preserves_register_kind() {
        // Found by the fuzzer (sxe-fuzz, module seed 0x9c6a537daa0c6564):
        // replacing a duplicate extend with a `copy.i64` flips the dst
        // register's inferred kind from Int32 to Wide, and if that
        // register has any other narrow definition the conversion
        // machinery's kind-consistency check panics downstream. The
        // replacement copy must stay at i32 — integer copies move the
        // full register at any ty, so no value is lost.
        let mut f = parse_function(
            "func @f(i32) -> i64 {\n\
             b0:\n    r1 = extend.32 r0\n    r2 = add.i16 r0, r0\n    r2 = extend.32 r0\n    \
             r3 = set.gt.i64 r1, r2\n    ret r3\n}\n",
        )
        .unwrap();
        assert_eq!(run(&mut f), 1);
        assert!(matches!(
            f.inst(InstId::new(BlockId(0), 2)),
            Inst::Copy { src: Reg(1), ty: Ty::I32, .. }
        ));
    }

    #[test]
    fn commutative_canonicalization() {
        let mut f = parse_function(
            "func @f(i32, i32) -> i32 {\n\
             b0:\n    r2 = add.i32 r0, r1\n    r3 = add.i32 r1, r0\n    r4 = sub.i32 r2, r3\n    ret r4\n}\n",
        )
        .unwrap();
        assert_eq!(run(&mut f), 1);
    }

    #[test]
    fn div_never_csed() {
        let mut f = parse_function(
            "func @f(i32, i32) -> i32 {\n\
             b0:\n    r2 = div.i32 r0, r1\n    r3 = div.i32 r0, r1\n    r4 = add.i32 r2, r3\n    ret r4\n}\n",
        )
        .unwrap();
        assert_eq!(run(&mut f), 0);
    }

    #[test]
    fn duplicate_constants_merged() {
        let mut f = parse_function(
            "func @f() -> i32 {\n\
             b0:\n    r0 = const.i32 7\n    r1 = const.i32 7\n    r2 = add.i32 r0, r1\n    ret r2\n}\n",
        )
        .unwrap();
        assert_eq!(run(&mut f), 1);
    }
}
