//! The authors' *first algorithm*: sign-extension elimination by backward
//! dataflow analysis (paper §1).
//!
//! "This algorithm … eliminates a sign extension instruction if the
//! backward dataflow analysis proves that the upper 32 bits of the
//! destination operand do not affect the correct execution of the
//! following instructions."
//!
//! The analysis computes, per program point and query width `w`, the set
//! of registers whose bits `>= w` still matter downstream (*demand*). An
//! extension whose destination is not demanded immediately after it is
//! removed. The algorithm's four limitations (§1) — array indices, missed
//! def-side opportunities, latest-extension-wins placement, and no code
//! motion out of loops — all fall out of this formulation and are
//! exercised by the `paper_figures` integration test.

use sxe_analysis::BitSet;
use sxe_ir::semantics::classify_uses;
use sxe_ir::{Cfg, Function, Inst, UseKind, Width};

/// Run the first algorithm at one width; returns the number of
/// extensions eliminated.
pub fn run_width(f: &mut Function, width: Width) -> usize {
    let cfg = Cfg::compute(f);
    let nregs = f.reg_count as usize;
    let nblocks = f.blocks.len();

    // Fixpoint over block-entry demand (backward).
    let mut demand_in: Vec<BitSet> = vec![BitSet::new(nregs); nblocks];
    let mut changed = true;
    while changed {
        changed = false;
        for &b in cfg.rpo().iter().rev() {
            let mut out = BitSet::new(nregs);
            for &s in cfg.succs(b) {
                out.union_with(&demand_in[s.index()]);
            }
            let mut set = out;
            for inst in f.block(b).insts.iter().rev() {
                transfer(inst, width, &mut set);
            }
            if set != demand_in[b.index()] {
                demand_in[b.index()] = set;
                changed = true;
            }
        }
    }

    // Sweep: remove extensions whose destination is undemanded just after
    // them. The demand computed with all extensions present is sound for
    // simultaneous removal because extensions only *kill* demand.
    let mut eliminated = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        if !cfg.is_reachable(b) {
            continue;
        }
        let mut set = BitSet::new(nregs);
        for &s in cfg.succs(b) {
            set.union_with(&demand_in[s.index()]);
        }
        let blk = f.block_mut(b);
        for inst in blk.insts.iter_mut().rev() {
            if let Inst::Extend { dst, src, from } = *inst {
                if from == width && !set.contains(dst.index()) {
                    // The machine `sxt` disappears. An in-place extension
                    // (`r = extend(r)`) vanishes entirely; a two-register
                    // one still has to move the value.
                    *inst = if dst == src {
                        Inst::Nop
                    } else {
                        Inst::Copy { dst, src, ty: from.ty() }
                    };
                    eliminated += 1;
                }
            }
            transfer(inst, width, &mut set);
        }
    }
    eliminated
}

/// Run the first algorithm for every width; returns the total eliminated.
pub fn run(f: &mut Function, widths: &[Width]) -> usize {
    let mut total = 0;
    for &w in widths {
        total += run_width(f, w);
    }
    f.compact();
    total
}

fn transfer(inst: &Inst, width: Width, set: &mut BitSet) {
    if matches!(inst, Inst::Nop) {
        return;
    }
    let demanded_dst = inst.dst().is_some_and(|d| set.contains(d.index()));
    if let Some(d) = inst.dst() {
        set.remove(d.index());
    }
    for (r, kind) in classify_uses(inst, width) {
        match kind {
            // The first algorithm cannot reason about array subscripts:
            // the effective-address computation demands the full register.
            UseKind::Required | UseKind::ArrayIndex => {
                set.insert(r.index());
            }
            UseKind::Transmits => {
                if demanded_dst {
                    set.insert(r.index());
                }
            }
            UseKind::Ignored => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::parse_function;

    #[test]
    fn removes_unneeded_keeps_needed() {
        // Figure 2(2): i = mem; i = i + 1; i = extend(i); t = (double) i.
        let mut f = parse_function(
            "func @f(i32) -> f64 {\n\
             b0:\n    r1 = newarray.i32 r0\n    r2 = aload.i32 r1, r0\n    r2 = extend.32 r2\n    r3 = const.i32 1\n    r2 = add.i32 r2, r3\n    r2 = extend.32 r2\n    r4 = i32tof64.f64 r2\n    ret r4\n}\n",
        )
        .unwrap();
        let n = run(&mut f, &[Width::W32]);
        // The extension after the load is removable (the add doesn't need
        // it); the one before i2d is not.
        assert_eq!(n, 1);
        assert_eq!(f.count_extends(None), 1);
    }

    #[test]
    fn keeps_array_index_extensions() {
        // Limitation 1: a[i] demands the full index register.
        let mut f = parse_function(
            "func @f(i32, i32) -> i32 {\n\
             b0:\n    r2 = newarray.i32 r0\n    r3 = sub.i32 r0, r1\n    r3 = extend.32 r3\n    r4 = aload.i32 r2, r3\n    r4 = extend.32 r4\n    ret r4\n}\n",
        )
        .unwrap();
        let n = run(&mut f, &[Width::W32]);
        // The index extension stays; the loaded value's extension stays
        // too (ret requires it).
        assert_eq!(n, 0);
        assert_eq!(f.count_extends(None), 2);
    }

    #[test]
    fn leaves_latest_extension_in_loop() {
        // Limitation 3: extensions of the same variable inside and
        // outside a loop — the one inside survives.
        let mut f = parse_function(
            "func @f(i32, i32) -> f64 {\n\
             b0:\n    r0 = extend.32 r0\n    br b1\n\
             b1:\n    r2 = const.i32 1\n    r0 = sub.i32 r0, r2\n    r0 = extend.32 r0\n    condbr gt.i32 r0, r1, b1, b2\n\
             b2:\n    r3 = i32tof64.f64 r0\n    ret r3\n}\n",
        )
        .unwrap();
        let n = run(&mut f, &[Width::W32]);
        assert_eq!(n, 1);
        // The surviving extension is the one in the loop (b1) — the
        // unfortunate placement the new algorithm fixes.
        assert!(f.block(sxe_ir::BlockId(1)).insts.iter().any(|i| i.is_extend(None)));
        assert!(!f.block(sxe_ir::BlockId(0)).insts.iter().any(|i| i.is_extend(None)));
    }

    #[test]
    fn demand_through_transmitting_ops() {
        // extend feeds an add whose result feeds i2d: demand flows
        // through the add, so the extension must stay.
        let mut f = parse_function(
            "func @f(i32, i32) -> f64 {\n\
             b0:\n    r2 = mul.i32 r0, r1\n    r2 = extend.32 r2\n    r3 = add.i32 r2, r1\n    r4 = i32tof64.f64 r3\n    ret r4\n}\n",
        )
        .unwrap();
        // Wait: the add's RESULT feeds i2d, so the add's dst is demanded
        // and demand transmits to r2.
        let n = run(&mut f, &[Width::W32]);
        assert_eq!(n, 0);
    }

    #[test]
    fn per_width_independence() {
        // extend.8 before a 32-bit store: bits 8..32 are stored, so the
        // 8-bit extension must stay; an extend.32 before the same store
        // is removable.
        let mut f = parse_function(
            "func @f(i32, i32) {\n\
             b0:\n    r2 = newarray.i32 r0\n    r3 = const.i32 0\n    r1 = extend.8 r1\n    r1 = extend.32 r1\n    astore.i32 r2, r3, r1\n    ret\n}\n",
        )
        .unwrap();
        let n = run(&mut f, &[Width::W32, Width::W16, Width::W8]);
        assert_eq!(n, 1);
        assert_eq!(f.count_extends(Some(Width::W8)), 1);
        assert_eq!(f.count_extends(Some(Width::W32)), 0);
    }
}
