//! The partial-dead-code-elimination (PDE) insertion variant
//! ("all, using PDE" in Tables 1–2).
//!
//! "This algorithm inserts a sign extension at the latest point on every
//! possible path where each sign extension can be reached when it is
//! moved forward in the control flow graph." (paper §2.1)
//!
//! Concretely: an extension is inserted before a requiring use of `r`
//! only if some *existing* extension of `r` reaches that point with no
//! intervening redefinition — it is a forward *motion* of existing
//! extensions, not a fresh anticipation. Figure 15 shows the resulting
//! drawback: uses not reached by any existing extension get nothing,
//! which is why the simple insertion measures slightly better.

use sxe_analysis::{AvailableExt, BitSet};
use sxe_analysis::dataflow::{solve, Direction, GenKillProblem, Meet};
use sxe_ir::{Cfg, DomTree, Function, Inst, LoopForest, Target, Width};

use crate::convert::infer_kinds;
use crate::insertion::{run_insertion, InsertionStats};

/// Run the PDE-variant insertion.
///
/// # Panics
/// Panics if register kinds cannot be inferred.
pub fn pde_insertion(f: &mut Function, target: Target, loops_only: bool) -> InsertionStats {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(&cfg);
    let loops = LoopForest::compute(&cfg, &dom);
    let insert_real = !loops_only || loops.has_loops();
    let kinds = infer_kinds(f).expect("register kinds must be consistent");
    let avail = AvailableExt::compute_inherent(f, &cfg, target, Width::W32);

    // Forward may-analysis: an Extend of r reaches this point without an
    // intervening (non-extend) redefinition of r.
    let nregs = f.reg_count as usize;
    let nblocks = f.blocks.len();
    let mut gen = vec![BitSet::new(nregs); nblocks];
    let mut kill = vec![BitSet::new(nregs); nblocks];
    for b in f.block_ids() {
        let bi = b.index();
        for inst in &f.block(b).insts {
            if let Some(d) = inst.dst() {
                match inst {
                    Inst::Extend { .. } => {
                        kill[bi].remove(d.index());
                        gen[bi].insert(d.index());
                    }
                    _ => {
                        gen[bi].remove(d.index());
                        kill[bi].insert(d.index());
                    }
                }
            }
        }
    }
    let sol = solve(
        &cfg,
        &GenKillProblem {
            direction: Direction::Forward,
            meet: Meet::Union,
            universe: nregs,
            gen,
            kill,
            boundary: BitSet::new(nregs),
        },
    );

    // Per-instruction reach sets.
    let mut reach: Vec<Vec<BitSet>> = Vec::with_capacity(nblocks);
    for b in f.block_ids() {
        let mut cur = sol.block_in[b.index()].clone();
        let mut per_inst = Vec::with_capacity(f.block(b).insts.len());
        for inst in &f.block(b).insts {
            per_inst.push(cur.clone());
            if let Some(d) = inst.dst() {
                match inst {
                    Inst::Extend { .. } => {
                        cur.insert(d.index());
                    }
                    _ => {
                        cur.remove(d.index());
                    }
                }
            }
        }
        reach.push(per_inst);
    }

    let may_reach = move |b: sxe_ir::BlockId, idx: usize, r: sxe_ir::Reg| -> bool {
        reach[b.index()][idx].contains(r.index())
    };
    run_insertion(f, target, &kinds, &avail, insert_real, Some(&may_reach))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, BlockId};

    #[test]
    fn inserts_where_extension_reaches() {
        // An extend of r0 exists in the loop; the use after the loop is
        // reached by it: PDE inserts there like the simple algorithm.
        let mut f = parse_function(
            "func @f(i32, i32) -> f64 {\n\
             b0:\n    br b1\n\
             b1:\n    r2 = const.i32 1\n    r0 = sub.i32 r0, r2\n    r0 = extend.32 r0\n    condbr gt.i32 r0, r1, b1, b2\n\
             b2:\n    r3 = i32tof64.f64 r0\n    ret r3\n}\n",
        )
        .unwrap();
        let stats = pde_insertion(&mut f, Target::Ia64, true);
        assert_eq!(stats.inserted, 1);
        assert!(f.block(BlockId(2)).insts[0].is_extend(None));
    }

    #[test]
    fn does_not_insert_where_no_extension_reaches() {
        // Figure 15's drawback: the use of r0 is not reached by any
        // existing extension of r0 (its most recent definition is an
        // unextended add), so PDE inserts nothing while the simple
        // algorithm would insert.
        let src = "func @f(i32, i32) -> f64 {\n\
             b0:\n    br b1\n\
             b1:\n    r2 = const.i32 1\n    r0 = add.i32 r0, r2\n    condbr gt.i32 r0, r1, b1, b2\n\
             b2:\n    r3 = i32tof64.f64 r0\n    ret r3\n}\n";
        let mut f = parse_function(src).unwrap();
        let stats = pde_insertion(&mut f, Target::Ia64, true);
        assert_eq!(stats.inserted, 0);

        let mut f2 = parse_function(src).unwrap();
        let simple = crate::insertion::simple_insertion(&mut f2, Target::Ia64, true);
        assert_eq!(simple.inserted, 1, "simple insertion is more aggressive");
    }

    #[test]
    fn pde_does_not_insert_dummies_itself() {
        // Dummy markers come from `insert_dummies`, shared by all
        // chain-based variants.
        let mut f = parse_function(
            "func @f(i32, i32) -> i32 {\n\
             b0:\n    r2 = newarray.i32 r0\n    r3 = aload.i32 r2, r1\n    ret r3\n}\n",
        )
        .unwrap();
        let stats = pde_insertion(&mut f, Target::Ia64, false);
        assert_eq!(stats.dummies, 0);
        assert_eq!(crate::insertion::insert_dummies(&mut f, Target::Ia64), 1);
    }
}
