//! Algorithm variants and configuration — one variant per row of the
//! paper's Tables 1 and 2.

use sxe_ir::{Target, Width};

/// The twelve measured configurations (Tables 1–2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Variant {
    /// Disable the sign-extension optimizations of Fig 5 step 3 entirely;
    /// extensions are generated after definitions and left in place.
    Baseline,
    /// Reference: generate a sign extension before every use point at
    /// code-generation time instead of after definitions (Fig 6(c)).
    GenUse,
    /// The authors' first algorithm: elimination by backward dataflow
    /// analysis only.
    FirstAlgorithm,
    /// The new UD/DU-chain algorithm with insertion, order determination,
    /// and array-subscript elimination all disabled.
    BasicUdDu,
    /// Enable sign-extension insertion only.
    Insert,
    /// Enable order determination only.
    Order,
    /// Enable insertion and order determination.
    InsertOrder,
    /// Enable array-subscript elimination only.
    Array,
    /// Array-subscript elimination plus insertion.
    ArrayInsert,
    /// Array-subscript elimination plus order determination.
    ArrayOrder,
    /// All features, but with the partial-dead-code-elimination insertion
    /// variant instead of the simple insertion (reference).
    AllPde,
    /// The complete new algorithm ("new algorithm (all)").
    All,
}

impl Variant {
    /// All variants in table-row order.
    pub const ALL: [Variant; 12] = [
        Variant::Baseline,
        Variant::GenUse,
        Variant::FirstAlgorithm,
        Variant::BasicUdDu,
        Variant::Insert,
        Variant::Order,
        Variant::InsertOrder,
        Variant::Array,
        Variant::ArrayInsert,
        Variant::ArrayOrder,
        Variant::AllPde,
        Variant::All,
    ];

    /// The table-row label used in the paper.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Variant::Baseline => "baseline",
            Variant::GenUse => "gen use (reference)",
            Variant::FirstAlgorithm => "first algorithm (bwd flow)",
            Variant::BasicUdDu => "basic ud/du",
            Variant::Insert => "insert",
            Variant::Order => "order",
            Variant::InsertOrder => "insert, order",
            Variant::Array => "array",
            Variant::ArrayInsert => "array, insert",
            Variant::ArrayOrder => "array, order",
            Variant::AllPde => "all, using PDE (reference)",
            Variant::All => "new algorithm (all)",
        }
    }

    /// Whether extensions are generated before uses instead of after
    /// definitions at conversion time.
    #[must_use]
    pub fn gen_use(self) -> bool {
        self == Variant::GenUse
    }

    /// Whether the backward-dataflow first algorithm performs the
    /// elimination (instead of the UD/DU-chain algorithm).
    #[must_use]
    pub fn first_algorithm(self) -> bool {
        self == Variant::FirstAlgorithm
    }

    /// Whether the UD/DU elimination phase runs at all.
    #[must_use]
    pub fn uses_udu(self) -> bool {
        !matches!(self, Variant::Baseline | Variant::GenUse | Variant::FirstAlgorithm)
    }

    /// Whether phase (3)-1 insertion runs (simple insertion unless
    /// [`Variant::pde_insertion`]).
    #[must_use]
    pub fn insertion(self) -> bool {
        matches!(
            self,
            Variant::Insert
                | Variant::InsertOrder
                | Variant::ArrayInsert
                | Variant::AllPde
                | Variant::All
        )
    }

    /// Whether the PDE insertion variant replaces the simple one.
    #[must_use]
    pub fn pde_insertion(self) -> bool {
        self == Variant::AllPde
    }

    /// Whether phase (3)-2 order determination runs (otherwise extensions
    /// are processed in reverse depth-first-search order).
    #[must_use]
    pub fn order_determination(self) -> bool {
        matches!(
            self,
            Variant::Order
                | Variant::InsertOrder
                | Variant::ArrayOrder
                | Variant::AllPde
                | Variant::All
        )
    }

    /// Whether array-subscript elimination (Theorems 1–4) is enabled.
    #[must_use]
    pub fn array_analysis(self) -> bool {
        matches!(
            self,
            Variant::Array
                | Variant::ArrayInsert
                | Variant::ArrayOrder
                | Variant::AllPde
                | Variant::All
        )
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Full configuration for the sign-extension elimination pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SxeConfig {
    /// Target architecture (affects load extension behaviour).
    pub target: Target,
    /// Algorithm variant.
    pub variant: Variant,
    /// The guaranteed maximum array length (paper §3, Theorem 4). The
    /// Java language maximum `0x7fff_ffff` is always sound; smaller
    /// values assert an external guarantee about the program (Figure 10).
    pub max_array_len: u32,
    /// Extension widths to optimize, processed independently.
    pub widths: Vec<Width>,
    /// Use profile-collected block frequencies for order determination
    /// when available (otherwise the static estimate).
    pub use_profile: bool,
    /// Also eliminate provably redundant *zero* extensions (an extension
    /// beyond the paper's evaluation; see [`crate::zext`]).
    pub eliminate_zext: bool,
}

impl Default for SxeConfig {
    fn default() -> SxeConfig {
        SxeConfig {
            target: Target::Ia64,
            variant: Variant::All,
            max_array_len: 0x7fff_ffff,
            widths: vec![Width::W32, Width::W16, Width::W8],
            use_profile: false,
            eliminate_zext: false,
        }
    }
}

impl SxeConfig {
    /// A configuration for the given variant with all other fields at
    /// their defaults.
    #[must_use]
    pub fn for_variant(variant: Variant) -> SxeConfig {
        SxeConfig { variant, ..SxeConfig::default() }
    }
}

/// Static statistics from one elimination run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SxeStats {
    /// Extensions generated by the 64-bit conversion.
    pub generated: usize,
    /// Extensions inserted by phase (3)-1.
    pub inserted: usize,
    /// Dummy extensions inserted after array accesses.
    pub dummies: usize,
    /// Extension sites examined by the elimination.
    pub examined: usize,
    /// Extensions eliminated.
    pub eliminated: usize,
    /// Of those, eliminated via the array theorems.
    pub eliminated_via_array: usize,
}

impl SxeStats {
    /// Accumulate another function's statistics.
    pub fn merge(&mut self, o: SxeStats) {
        self.generated += o.generated;
        self.inserted += o.inserted;
        self.dummies += o.dummies;
        self.examined += o.examined;
        self.eliminated += o.eliminated;
        self.eliminated_via_array += o.eliminated_via_array;
    }

    /// Add these counts to a telemetry registry under the `sxe.*`
    /// labels — the Table 3 taxonomy: generated by conversion, inserted
    /// by phase (3)-1 (dummies separately), examined by the elimination,
    /// and eliminated split into the UD/DU walk versus the array
    /// theorems (`sxe.extends_eliminated.{total,udu,array}`).
    pub fn record_into(&self, registry: &mut sxe_telemetry::Registry) {
        registry.add("sxe.extends_generated", self.generated as u64);
        registry.add("sxe.extends_inserted", self.inserted as u64);
        registry.add("sxe.dummies_inserted", self.dummies as u64);
        registry.add("sxe.extends_examined", self.examined as u64);
        registry.add("sxe.extends_eliminated.total", self.eliminated as u64);
        registry.add(
            "sxe.extends_eliminated.udu",
            (self.eliminated - self.eliminated_via_array.min(self.eliminated)) as u64,
        );
        registry.add("sxe.extends_eliminated.array", self.eliminated_via_array as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_export_splits_the_elimination_taxonomy() {
        let stats = SxeStats {
            generated: 10,
            inserted: 4,
            dummies: 2,
            examined: 14,
            eliminated: 9,
            eliminated_via_array: 3,
        };
        let mut registry = sxe_telemetry::Registry::new();
        stats.record_into(&mut registry);
        assert_eq!(registry.counter("sxe.extends_generated"), 10);
        assert_eq!(registry.counter("sxe.extends_examined"), 14);
        assert_eq!(registry.counter("sxe.extends_eliminated.total"), 9);
        assert_eq!(
            registry.counter("sxe.extends_eliminated.udu")
                + registry.counter("sxe.extends_eliminated.array"),
            registry.counter("sxe.extends_eliminated.total"),
            "the taxonomy partitions the total"
        );
    }

    #[test]
    fn feature_matrix_matches_paper() {
        use Variant::*;
        // (variant, insert, order, array)
        let expect = [
            (BasicUdDu, false, false, false),
            (Insert, true, false, false),
            (Order, false, true, false),
            (InsertOrder, true, true, false),
            (Array, false, false, true),
            (ArrayInsert, true, false, true),
            (ArrayOrder, false, true, true),
            (AllPde, true, true, true),
            (All, true, true, true),
        ];
        for (v, ins, ord, arr) in expect {
            assert_eq!(v.insertion(), ins, "{v}");
            assert_eq!(v.order_determination(), ord, "{v}");
            assert_eq!(v.array_analysis(), arr, "{v}");
            assert!(v.uses_udu(), "{v}");
        }
        assert!(!Baseline.uses_udu());
        assert!(!GenUse.uses_udu());
        assert!(!FirstAlgorithm.uses_udu());
        assert!(GenUse.gen_use());
        assert!(FirstAlgorithm.first_algorithm());
        assert!(AllPde.pde_insertion());
        assert!(!All.pde_insertion());
    }

    #[test]
    fn twelve_variants() {
        assert_eq!(Variant::ALL.len(), 12);
        let labels: std::collections::BTreeSet<_> =
            Variant::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), 12, "labels are unique");
    }

    #[test]
    fn default_config_is_java_on_ia64() {
        let c = SxeConfig::default();
        assert_eq!(c.target, Target::Ia64);
        assert_eq!(c.max_array_len, 0x7fff_ffff);
        assert_eq!(c.variant, Variant::All);
    }
}
