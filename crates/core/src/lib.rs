//! # sxe-core — Effective Sign Extension Elimination
//!
//! A from-scratch implementation of the algorithm of *Effective Sign
//! Extension Elimination* (Kawahito, Komatsu, Nakatani; IBM Research
//! Report RT0442 / PLDI 2002), on the IR of [`sxe_ir`]:
//!
//! 1. **Conversion for a 64-bit architecture** ([`convert`]): generate an
//!    explicit `extend` after every 32-bit definition not guaranteed
//!    extended (the superior *gen-def* strategy of Figure 6; *gen-use* is
//!    available as the paper's reference).
//! 2. General optimizations live in the sibling `sxe-opt` crate.
//! 3. **Elimination and movement of sign extensions** ([`run_step3`]):
//!    * [`insertion`] — extensions placed before requiring uses plus
//!      dummy markers after array accesses ((3)-1; [`pde`] provides the
//!      rejected PDE variant);
//!    * [`order`] — hottest-region-first processing ((3)-2);
//!    * [`eliminate`] — `EliminateOneExtend` over UD/DU chains, with the
//!      array-subscript Theorems 1–4 of §3 in [`mod@array`] ((3)-3).
//!
//! The twelve measured configurations of the paper's Tables 1–2 are
//! selected by [`Variant`].
//!
//! ```
//! use sxe_core::{convert_function, run_step3, GenStrategy, SxeConfig, Variant};
//! use sxe_ir::{parse_function, Target};
//!
//! // i = i & 0xff; return (double) i  — the extension is redundant.
//! let mut f = parse_function(
//!     "func @f(i32) -> f64 {\nb0:\n    r1 = const.i32 255\n    r2 = and.i32 r0, r1\n    r3 = i32tof64.f64 r2\n    ret r3\n}\n",
//! )?;
//! convert_function(&mut f, Target::Ia64, GenStrategy::AfterDef);
//! let stats = run_step3(&mut f, &SxeConfig::for_variant(Variant::All), None);
//! assert_eq!(f.count_extends(None), 0);
//! assert!(stats.eliminated <= stats.examined);
//! # Ok::<(), sxe_ir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod array;
mod config;
pub mod convert;
pub mod eliminate;
pub mod first_algorithm;
pub mod insertion;
pub mod order;
mod pass;
pub mod pde;
pub mod zext;

pub use config::{SxeConfig, SxeStats, Variant};
pub use convert::{convert_function, convert_module, infer_kinds, GenStrategy, RegKind};
pub use eliminate::{strip_dummies, ElimConfig, ElimResult};
pub use insertion::InsertionStats;
pub use pass::{
    fallback_order, run_step3, run_step3_module, run_step3_timed, step3_eliminate,
    step3_eliminate_cached, step3_first, step3_insertion, step3_insertion_cached, step3_order,
    step3_order_cached, ElimOutcome, InsertionOutcome, ModuleProfile, Step3Timing,
};
