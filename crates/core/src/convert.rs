//! Conversion for a 64-bit architecture (paper Figure 5, step 1).
//!
//! Translates IR written in "32-bit architecture form" (no explicit sign
//! extensions except source-level casts) into 64-bit form by generating
//! [`sxe_ir::Inst::Extend`] instructions. Two strategies exist (Figure 6):
//!
//! * **gen-def** (the paper's choice): generate an extension immediately
//!   *after* every instruction with a 32-bit destination, "unless the
//!   destination operand of the instruction I is guaranteed to be
//!   sign-extended";
//! * **gen-use** (reference): generate an extension immediately *before*
//!   every instruction that requires one, unless the source is guaranteed
//!   to be sign-extended.
//!
//! Both use the flow-sensitive [`AvailableExt`] facts for the "guaranteed"
//! checks, mirroring what a code generator knows.

use sxe_analysis::AvailableExt;
use sxe_ir::semantics::{classify_uses, def_facts, param_facts};
use sxe_ir::{Cfg, ExtFacts, Function, Inst, Reg, Target, Ty, UseKind, Width};

/// The inferred class of a virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegKind {
    /// A narrow integer value (`i8`/`i16`/`i32` program type) living in a
    /// 64-bit register — the values the conversion must extend.
    Int32,
    /// A full-width value: `i64` or an array reference.
    Wide,
    /// An `f64` value.
    Float,
    /// Never defined or used.
    Unused,
}

/// Infer the class of every register from its definitions and the
/// function signature.
///
/// # Errors
/// Returns a description of the first register defined with conflicting
/// classes (e.g. both as `i32` and as `f64`), which indicates malformed
/// input.
pub fn infer_kinds(f: &Function) -> Result<Vec<RegKind>, String> {
    let mut kinds = vec![RegKind::Unused; f.reg_count as usize];
    let mut assign = |r: Reg, k: RegKind| -> Result<(), String> {
        let cur = &mut kinds[r.index()];
        match (*cur, k) {
            (RegKind::Unused, _) => {
                *cur = k;
                Ok(())
            }
            (a, b) if a == b => Ok(()),
            (a, b) => Err(format!("register {r} defined as both {a:?} and {b:?}")),
        }
    };
    let kind_of_ty = |ty: Ty| match ty {
        Ty::I8 | Ty::I16 | Ty::I32 => RegKind::Int32,
        Ty::I64 => RegKind::Wide,
        Ty::F64 => RegKind::Float,
    };
    for &(r, ty) in &f.params {
        assign(r, kind_of_ty(ty))?;
    }
    for (_, inst) in f.insts() {
        let Some(d) = inst.dst() else { continue };
        let k = match *inst {
            Inst::Const { ty, .. } => kind_of_ty(ty),
            Inst::ConstF { .. } => RegKind::Float,
            Inst::Copy { ty, .. } | Inst::Un { ty, .. } | Inst::Bin { ty, .. } => kind_of_ty(ty),
            Inst::Setcc { .. } | Inst::ArrayLen { .. } => RegKind::Int32,
            Inst::Extend { .. } | Inst::JustExtended { .. } => RegKind::Int32,
            Inst::NewArray { .. } => RegKind::Wide,
            Inst::ArrayLoad { elem, .. } => kind_of_ty(elem),
            Inst::Call { .. } => RegKind::Wide, // refined below if known
            _ => continue,
        };
        // Calls: the IR does not store the callee's return type on the
        // instruction, so treat results as wide here; `convert_module`
        // refines them.
        assign(d, k)?;
    }
    Ok(kinds)
}

/// Refine call-result kinds using callee signatures from the module.
fn refine_call_kinds(
    m: &sxe_ir::Module,
    f: &Function,
    kinds: &mut [RegKind],
) {
    for (_, inst) in f.insts() {
        if let Inst::Call { dst: Some(d), func, .. } = inst {
            let ret = m.function(*func).ret;
            kinds[d.index()] = match ret {
                Some(Ty::I8 | Ty::I16 | Ty::I32) => RegKind::Int32,
                Some(Ty::F64) => RegKind::Float,
                _ => RegKind::Wide,
            };
        }
    }
}

/// Rewrite `d = extend(s)` with `d != s` into `d = copy s; d = extend d`
/// so every extension is in the canonical in-place form the elimination
/// machinery manipulates.
pub fn normalize_extends(f: &mut Function) -> usize {
    let mut changed = 0;
    for b in 0..f.blocks.len() {
        let old = std::mem::take(&mut f.blocks[b].insts);
        let mut new = Vec::with_capacity(old.len());
        for inst in old {
            match inst {
                Inst::Extend { dst, src, from } if dst != src => {
                    new.push(Inst::Copy { dst, src, ty: from.ty() });
                    new.push(Inst::Extend { dst, src: dst, from });
                    changed += 1;
                }
                Inst::JustExtended { dst, src, from } if dst != src => {
                    new.push(Inst::Copy { dst, src, ty: from.ty() });
                    new.push(Inst::JustExtended { dst, src: dst, from });
                    changed += 1;
                }
                other => new.push(other),
            }
        }
        f.blocks[b].insts = new;
    }
    changed
}

/// Strategy selector for [`convert_function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenStrategy {
    /// Generate after definitions (Figure 6(b), the paper's approach).
    AfterDef,
    /// Generate before uses (Figure 6(c), reference).
    BeforeUse,
}

/// Convert one function to 64-bit form; returns the number of extensions
/// generated.
///
/// # Panics
/// Panics if register kinds cannot be inferred (malformed input).
pub fn convert_function(f: &mut Function, target: Target, strategy: GenStrategy) -> usize {
    convert_function_with_kinds(f, target, strategy, None)
}

fn convert_function_with_kinds(
    f: &mut Function,
    target: Target,
    strategy: GenStrategy,
    kinds: Option<Vec<RegKind>>,
) -> usize {
    normalize_extends(f);
    let kinds = match kinds {
        Some(k) => k,
        None => infer_kinds(f).expect("register kinds must be consistent"),
    };
    let cfg = Cfg::compute(f);
    let avail = AvailableExt::compute(f, &cfg, target, Width::W32);

    let mut generated = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        // Facts in force at the block entry (computed on the original
        // code; newly generated extensions only strengthen facts, so this
        // is sound and at worst generates a redundant extension).
        let mut state: Vec<ExtFacts> = (0..f.reg_count)
            .map(|r| avail.at_block_entry(b, Reg(r)))
            .collect();
        let old = std::mem::take(&mut f.block_mut(b).insts);
        let mut new = Vec::with_capacity(old.len() * 2);
        for inst in old {
            if matches!(inst, Inst::Nop) {
                continue;
            }
            if strategy == GenStrategy::BeforeUse {
                // Extend each required 32-bit operand not already known
                // extended.
                let mut done: Vec<Reg> = Vec::new();
                for (r, kind) in classify_uses(&inst, Width::W32) {
                    let needs = matches!(kind, UseKind::Required | UseKind::ArrayIndex);
                    if needs
                        && kinds[r.index()] == RegKind::Int32
                        && !state[r.index()].sign_extended
                        && !done.contains(&r)
                    {
                        new.push(Inst::Extend { dst: r, src: r, from: Width::W32 });
                        state[r.index()] = ExtFacts::EXTENDED;
                        generated += 1;
                        done.push(r);
                    }
                }
            }
            let dst = inst.dst();
            let facts = def_facts(&inst, target, Width::W32, &mut |r: Reg| state[r.index()]);
            new.push(inst);
            if let Some(d) = dst {
                state[d.index()] = facts;
                if strategy == GenStrategy::AfterDef
                    && kinds[d.index()] == RegKind::Int32
                    && !facts.sign_extended
                {
                    new.push(Inst::Extend { dst: d, src: d, from: Width::W32 });
                    state[d.index()] = ExtFacts::EXTENDED;
                    generated += 1;
                }
            }
        }
        f.block_mut(b).insts = new;
    }
    generated
}

/// Convert every function of a module, refining call-result kinds from
/// the callee signatures.
///
/// # Panics
/// Panics if register kinds cannot be inferred for some function.
pub fn convert_module(m: &mut sxe_ir::Module, target: Target, strategy: GenStrategy) -> usize {
    let mut total = 0;
    for fi in 0..m.functions.len() {
        let mut kinds = infer_kinds(&m.functions[fi]).expect("consistent kinds");
        refine_call_kinds(m, &m.functions[fi], &mut kinds);
        total += convert_function_with_kinds(&mut m.functions[fi], target, strategy, Some(kinds));
    }
    total
}

/// Facts-aware check used by tests: whether a function still computes the
/// "fully extended everywhere" discipline, i.e. every required use is of
/// an extended register. Used as a sanity check on conversion output.
#[must_use]
pub fn fully_extended(f: &Function, target: Target) -> bool {
    let cfg = Cfg::compute(f);
    let avail = AvailableExt::compute(f, &cfg, target, Width::W32);
    let kinds = match infer_kinds(f) {
        Ok(k) => k,
        Err(_) => return false,
    };
    for b in f.block_ids() {
        if !cfg.is_reachable(b) {
            continue;
        }
        let mut w = avail.walk_block(f, b);
        for inst in &f.block(b).insts {
            for (r, kind) in classify_uses(inst, Width::W32) {
                let needs = matches!(kind, UseKind::Required | UseKind::ArrayIndex);
                if needs && kinds[r.index()] == RegKind::Int32 && !w.facts(r).sign_extended {
                    return false;
                }
            }
            w.step();
        }
    }
    true
}

/// Facts for a parameter, re-exported for the elimination (kept here so
/// the conversion and elimination share the calling-convention view).
#[must_use]
pub fn param_fact(ty: Ty, w: Width) -> ExtFacts {
    param_facts(ty, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, verify_function, BlockId};

    #[test]
    fn gen_def_extends_after_arith() {
        let mut f = parse_function(
            "func @f(i32, i32) -> f64 {\n\
             b0:\n    r2 = add.i32 r0, r1\n    r3 = i32tof64.f64 r2\n    ret r3\n}\n",
        )
        .unwrap();
        let n = convert_function(&mut f, Target::Ia64, GenStrategy::AfterDef);
        assert_eq!(n, 1);
        verify_function(&f).unwrap();
        // The extension is placed right after the add.
        let insts = &f.block(BlockId(0)).insts;
        assert!(matches!(insts[0], Inst::Bin { .. }));
        assert!(insts[1].is_extend(Some(Width::W32)));
        assert!(fully_extended(&f, Target::Ia64));
    }

    #[test]
    fn gen_def_skips_guaranteed_defs() {
        // Constants, setcc, array lengths, byte loads: all arrive
        // extended; no extension generated.
        let mut f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 -3\n    r2 = set.lt.i32 r0, r1\n    r3 = newarray.i8 r0\n    r4 = len r3\n    r5 = aload.i8 r3, r2\n    ret r5\n}\n",
        )
        .unwrap();
        let n = convert_function(&mut f, Target::Ia64, GenStrategy::AfterDef);
        assert_eq!(n, 0);
    }

    #[test]
    fn ia64_load_needs_extension_ppc_does_not() {
        let src = "func @f(i32) -> i32 {\n\
             b0:\n    r1 = newarray.i32 r0\n    r2 = aload.i32 r1, r0\n    ret r2\n}\n";
        let mut fi = parse_function(src).unwrap();
        assert_eq!(convert_function(&mut fi, Target::Ia64, GenStrategy::AfterDef), 1);
        let mut fp = parse_function(src).unwrap();
        assert_eq!(convert_function(&mut fp, Target::Ppc64, GenStrategy::AfterDef), 0);
    }

    #[test]
    fn mips64_alu_results_are_born_extended() {
        // Every true 32-bit ALU op canonicalizes on MIPS64, so the
        // conversion that generates one extension per arithmetic def on
        // IA64 generates none at all there.
        let src = "func @f(i32, i32) -> f64 {\n\
             b0:\n    r2 = add.i32 r0, r1\n    r3 = sub.i32 r2, r0\n    r4 = i32tof64.f64 r3\n    ret r4\n}\n";
        let mut fi = parse_function(src).unwrap();
        assert_eq!(convert_function(&mut fi, Target::Ia64, GenStrategy::AfterDef), 2);
        let mut fm = parse_function(src).unwrap();
        assert_eq!(convert_function(&mut fm, Target::Mips64, GenStrategy::AfterDef), 0);
        assert!(fully_extended(&fm, Target::Mips64));
        // Bitwise ops have no 32-bit MIPS forms: `or` still needs its
        // extension when the result feeds a Required use.
        let src = "func @f(i32, i32) -> f64 {\n\
             b0:\n    r2 = or.i32 r0, r1\n    r3 = i32tof64.f64 r2\n    ret r3\n}\n";
        let mut fm = parse_function(src).unwrap();
        // Params arrive extended, and or preserves extension — so even
        // this generates nothing; force the issue with an add feeding or.
        assert_eq!(convert_function(&mut fm, Target::Mips64, GenStrategy::AfterDef), 0);
        let src = "func @f(i32) -> f64 {\n\
             b0:\n    r1 = shru.i32 r0, r0\n    r2 = or.i32 r1, r0\n    r3 = i32tof64.f64 r2\n    ret r3\n}\n";
        let mut fm = parse_function(src).unwrap();
        // shru is canonical (extended) on MIPS64 and r0 arrives extended,
        // so or of the two is still extended: no residue.
        assert_eq!(convert_function(&mut fm, Target::Mips64, GenStrategy::AfterDef), 0);
        let mut fi = parse_function(src).unwrap();
        // On IA64 the shru result is only upper-zero, not sign-extended,
        // so it needs the one extension MIPS64 gets for free.
        assert_eq!(convert_function(&mut fi, Target::Ia64, GenStrategy::AfterDef), 1);
    }

    #[test]
    fn mips64_i32_load_needs_no_extension() {
        let src = "func @f(i32) -> i32 {\n\
             b0:\n    r1 = newarray.i32 r0\n    r2 = aload.i32 r1, r0\n    ret r2\n}\n";
        let mut fm = parse_function(src).unwrap();
        assert_eq!(convert_function(&mut fm, Target::Mips64, GenStrategy::AfterDef), 0);
    }

    #[test]
    fn gen_use_extends_before_required_use() {
        let mut f = parse_function(
            "func @f(i32, i32) -> f64 {\n\
             b0:\n    r2 = add.i32 r0, r1\n    r3 = sub.i32 r2, r0\n    r4 = i32tof64.f64 r3\n    ret r4\n}\n",
        )
        .unwrap();
        let n = convert_function(&mut f, Target::Ia64, GenStrategy::BeforeUse);
        // Only one extension: before the i2d (the adds/subs don't need
        // extended inputs).
        assert_eq!(n, 1);
        let insts = &f.block(BlockId(0)).insts;
        assert!(insts[2].is_extend(Some(Width::W32)));
        assert!(fully_extended(&f, Target::Ia64));
    }

    #[test]
    fn normalization_splits_two_reg_extends() {
        let mut f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = extend.32 r0\n    ret r1\n}\n",
        )
        .unwrap();
        assert_eq!(normalize_extends(&mut f), 1);
        let insts = &f.block(BlockId(0)).insts;
        assert!(matches!(insts[0], Inst::Copy { dst: Reg(1), src: Reg(0), .. }));
        assert!(matches!(insts[1], Inst::Extend { dst: Reg(1), src: Reg(1), .. }));
        verify_function(&f).unwrap();
    }

    #[test]
    fn kinds_inferred() {
        let f = parse_function(
            "func @f(i32, i64, f64) -> i32 {\n\
             b0:\n    r3 = newarray.i32 r0\n    r4 = aload.i32 r3, r0\n    r5 = constf 1.0\n    ret r4\n}\n",
        )
        .unwrap();
        let k = infer_kinds(&f).unwrap();
        assert_eq!(k[0], RegKind::Int32);
        assert_eq!(k[1], RegKind::Wide);
        assert_eq!(k[2], RegKind::Float);
        assert_eq!(k[3], RegKind::Wide); // array ref
        assert_eq!(k[4], RegKind::Int32);
        assert_eq!(k[5], RegKind::Float);
    }

    #[test]
    fn conflicting_kinds_rejected() {
        let f = parse_function(
            "func @f() -> i32 {\n\
             b0:\n    r0 = const.i32 1\n    r0 = constf 1.0\n    ret r0\n}\n",
        )
        .unwrap();
        assert!(infer_kinds(&f).is_err());
    }

    #[test]
    fn loop_counter_gets_extended_each_iteration() {
        // The canonical countdown loop of the paper's Figure 3.
        let mut f = parse_function(
            "func @f(i32, i32) -> i32 {\n\
             b0:\n    br b1\n\
             b1:\n    r2 = const.i32 1\n    r0 = sub.i32 r0, r2\n    condbr gt.i32 r0, r1, b1, b2\n\
             b2:\n    ret r0\n}\n",
        )
        .unwrap();
        let n = convert_function(&mut f, Target::Ia64, GenStrategy::AfterDef);
        assert_eq!(n, 1); // after the sub
        assert!(fully_extended(&f, Target::Ia64));
    }
}
