//! Zero-extension elimination — an extension beyond the paper.
//!
//! The paper closes by noting the algorithm "is also applicable for other
//! languages requiring sign extensions"; the same machinery applies to
//! *zero* extensions (C `unsigned`, Java `char`). A `zext_w(x)` is a
//! no-op whenever bits `>= w` of `x` are already zero — precisely the
//! `upper_zero` fact the [`AvailableExt`] analysis tracks at width `w`
//! (e.g. an IA64 32-bit load, a masked value, or another zero
//! extension).
//!
//! The pass is off by default (it is not part of the paper's evaluation)
//! and is enabled with
//! [`SxeConfig::eliminate_zext`](crate::SxeConfig::eliminate_zext).

use sxe_analysis::AvailableExt;
use sxe_ir::{Cfg, Function, Inst, Target, Ty, UnOp, Width};

/// Replace provably redundant zero extensions with copies; returns the
/// number rewritten.
pub fn eliminate_zero_extensions(f: &mut Function, target: Target) -> usize {
    let cfg = Cfg::compute(f);
    let mut rewritten = 0;
    for width in [Width::W8, Width::W16, Width::W32] {
        let avail = AvailableExt::compute(f, &cfg, target, width);
        for b in f.block_ids().collect::<Vec<_>>() {
            if !cfg.is_reachable(b) {
                continue;
            }
            let mut walker = avail.walk_block(f, b);
            let mut replace: Vec<(usize, Inst)> = Vec::new();
            for (i, inst) in f.block(b).insts.iter().enumerate() {
                if let Inst::Un { op: UnOp::Zext(from), ty, dst, src } = *inst {
                    if from == width && walker.facts(src).upper_zero {
                        let copy_ty = if ty == Ty::F64 { Ty::I64 } else { ty };
                        replace.push((i, Inst::Copy { dst, src, ty: copy_ty }));
                    }
                }
                walker.step();
            }
            for (i, inst) in replace {
                f.block_mut(b).insts[i] = inst;
                rewritten += 1;
            }
        }
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, BlockId, InstId};

    #[test]
    fn zext_of_masked_value_removed() {
        // x & 0xff already has zero bits above 8: zext8 is a no-op.
        let mut f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 255\n    r2 = and.i32 r0, r1\n    r3 = zext8.i32 r2\n    ret r3\n}\n",
        )
        .unwrap();
        assert_eq!(eliminate_zero_extensions(&mut f, Target::Ia64), 1);
        assert!(matches!(
            f.inst(InstId::new(BlockId(0), 2)),
            Inst::Copy { .. }
        ));
    }

    #[test]
    fn zext_of_unknown_value_kept() {
        let mut f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = zext8.i32 r0\n    ret r1\n}\n",
        )
        .unwrap();
        assert_eq!(eliminate_zero_extensions(&mut f, Target::Ia64), 0);
    }

    #[test]
    fn zext32_after_ia64_load_removed_only_on_ia64() {
        // An IA64 32-bit load is upper-zero; a PPC64 lwa is sign-extended
        // (upper bits may be ones), so the zext32 must stay there.
        let src = "func @f(i32) -> i64 {\n\
             b0:\n    r1 = newarray.i32 r0\n    r2 = aload.i32 r1, r0\n    r3 = zext32.i64 r2\n    ret r3\n}\n";
        let mut ia = parse_function(src).unwrap();
        assert_eq!(eliminate_zero_extensions(&mut ia, Target::Ia64), 1);
        let mut ppc = parse_function(src).unwrap();
        assert_eq!(eliminate_zero_extensions(&mut ppc, Target::Ppc64), 0);
    }

    #[test]
    fn chained_zexts_collapse() {
        // zext16(zext16(x)): the second is redundant.
        let mut f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = zext16.i32 r0\n    r2 = zext16.i32 r1\n    ret r2\n}\n",
        )
        .unwrap();
        assert_eq!(eliminate_zero_extensions(&mut f, Target::Ia64), 1);
    }

    #[test]
    fn flow_sensitive_across_blocks() {
        let mut f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 65535\n    r2 = and.i32 r0, r1\n    br b1\n\
             b1:\n    r3 = zext16.i32 r2\n    ret r3\n}\n",
        )
        .unwrap();
        assert_eq!(eliminate_zero_extensions(&mut f, Target::Ia64), 1);
    }
}
