//! Phase (3)-1: sign-extension insertion (paper §2.1).
//!
//! Two kinds of instructions are inserted:
//!
//! * a sign extension "immediately before every instruction where sign
//!   extension is necessary unless its variable is obviously
//!   sign-extended" — so that, combined with hottest-first elimination,
//!   extensions migrate out of loops (Figures 7/8);
//! * a *dummy* sign extension (`justext`) just after every array access,
//!   marking the index as known-extended (the access succeeded), "unless
//!   an array index is overwritten immediately, as in `i = a[i]`".
//!
//! "To balance compilation time and effectiveness, we apply this
//! insertion only to those methods which include a loop."

use sxe_analysis::AvailableExt;
use sxe_ir::semantics::{classify_uses, def_facts};
use sxe_ir::{
    Cfg, DomTree, ExtFacts, Function, Inst, LoopForest, Reg, Target, UseKind, Width,
};

use crate::convert::{infer_kinds, RegKind};

/// Result counts of the insertion phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertionStats {
    /// Real extensions inserted before requiring uses.
    pub inserted: usize,
    /// Dummy extensions — always 0 from the insertion algorithms
    /// themselves; dummies come from the separate [`insert_dummies`]
    /// pass, which runs for every chain-based variant.
    pub dummies: usize,
}

/// Run the simple insertion algorithm (real extensions before requiring
/// uses; dummies are handled separately by [`insert_dummies`]).
///
/// `loops_only` implements the paper's compile-time guard: extensions
/// are inserted only when the function contains a loop.
///
/// # Panics
/// Panics if register kinds cannot be inferred.
pub fn simple_insertion(f: &mut Function, target: Target, loops_only: bool) -> InsertionStats {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(&cfg);
    let loops = LoopForest::compute(&cfg, &dom);
    let insert_real = !loops_only || loops.has_loops();
    let kinds = infer_kinds(f).expect("register kinds must be consistent");
    let avail = AvailableExt::compute_inherent(f, &cfg, target, Width::W32);
    run_insertion(f, target, &kinds, &avail, insert_real, None)
}

/// Insert a dummy extension (`justext`) after every array access,
/// asserting that the just-bounds-checked index is sign-extended —
/// "unless an array index is overwritten immediately, as in `i = a[i]`".
///
/// Dummies are free compiler-internal markers (they cost no machine
/// instruction and are removed when elimination finishes), and they are
/// the *sound* carrier of loop-carried index facts: an index that
/// survived a bounds check is a non-negative in-range value. They are
/// therefore inserted whenever the UD/DU elimination runs, regardless of
/// the `insert` feature.
///
/// # Panics
/// Panics if register kinds cannot be inferred.
pub fn insert_dummies(f: &mut Function, _target: Target) -> usize {
    let kinds = infer_kinds(f).expect("register kinds must be consistent");
    let mut dummies = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        let old = std::mem::take(&mut f.block_mut(b).insts);
        let mut new: Vec<Inst> = Vec::with_capacity(old.len() + 4);
        for inst in old {
            if matches!(inst, Inst::Nop) {
                continue;
            }
            let dummy = match inst {
                Inst::ArrayLoad { dst, index, .. } if dst != index => Some(index),
                Inst::ArrayStore { index, .. } => Some(index),
                _ => None,
            };
            new.push(inst);
            if let Some(idx) = dummy {
                if kinds[idx.index()] == RegKind::Int32 {
                    new.push(Inst::JustExtended { dst: idx, src: idx, from: Width::W32 });
                    dummies += 1;
                }
            }
        }
        f.block_mut(b).insts = new;
    }
    dummies
}

/// Shared insertion engine; `may_reach` (when present) restricts real
/// insertions to registers for which an existing extension reaches the
/// use point (the PDE variant, see [`crate::pde`]).
pub(crate) fn run_insertion(
    f: &mut Function,
    target: Target,
    kinds: &[RegKind],
    avail: &AvailableExt,
    insert_real: bool,
    may_reach: Option<&dyn Fn(sxe_ir::BlockId, usize, Reg) -> bool>,
) -> InsertionStats {
    let mut stats = InsertionStats::default();
    for b in f.block_ids().collect::<Vec<_>>() {
        let old = std::mem::take(&mut f.block_mut(b).insts);
        let mut new: Vec<Inst> = Vec::with_capacity(old.len() + 4);
        for (orig_idx, inst) in old.into_iter().enumerate() {
            if matches!(inst, Inst::Nop) {
                continue;
            }
            if insert_real {
                let mut done: Vec<Reg> = Vec::new();
                for (r, kind) in classify_uses(&inst, Width::W32) {
                    // Only *requiring* uses receive anticipatory
                    // extensions (the paper's Figure 7(b) inserts (11)
                    // before the i2d but nothing before a[i]): array
                    // subscripts are the province of the §3 theorems, and
                    // shadowing them with fresh in-loop extensions would
                    // defeat the hottest-first elimination order.
                    let needs = matches!(kind, UseKind::Required);
                    if !needs || kinds[r.index()] != RegKind::Int32 || done.contains(&r) {
                        continue;
                    }
                    if obviously_extended(&new, b, r, target, avail) {
                        continue;
                    }
                    if let Some(reach) = may_reach {
                        if !reach(b, orig_idx, r) {
                            continue;
                        }
                    }
                    new.push(Inst::Extend { dst: r, src: r, from: Width::W32 });
                    stats.inserted += 1;
                    done.push(r);
                }
            }
            new.push(inst);
        }
        f.block_mut(b).insts = new;
    }
    stats
}

/// The paper's cheap "obviously sign-extended" check: scan backward
/// within the (partially rebuilt) block for the most recent definition of
/// `r`; if it is an extension, a dummy, or an unconditionally extended
/// definition, the variable is obvious. Falls back to the block-entry
/// facts when no local definition exists.
fn obviously_extended(
    built: &[Inst],
    b: sxe_ir::BlockId,
    r: Reg,
    target: Target,
    avail: &AvailableExt,
) -> bool {
    for inst in built.iter().rev() {
        if inst.dst() == Some(r) {
            return match inst {
                Inst::Extend { from, .. } | Inst::JustExtended { from, .. } => {
                    from.bits() <= 32
                }
                other => {
                    def_facts(other, target, Width::W32, &mut |_| ExtFacts::NONE).sign_extended
                }
            };
        }
    }
    avail.at_block_entry(b, r).sign_extended
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, verify_function, BlockId};

    /// The paper's Figure 7 shape: a loop accumulating `t`, with `(double) t`
    /// after the loop.
    const FIGURE7_LIKE: &str = "\
func @f(i32, i32) -> f64 {
b0:
    br b1
b1:
    r2 = const.i32 1
    r0 = sub.i32 r0, r2
    r0 = extend.32 r0
    condbr gt.i32 r0, r1, b1, b2
b2:
    r3 = i32tof64.f64 r0
    ret r3
}
";

    #[test]
    fn inserts_before_required_use_after_loop() {
        let mut f = parse_function(FIGURE7_LIKE).unwrap();
        let stats = simple_insertion(&mut f, Target::Ia64, true);
        assert_eq!(stats.inserted, 1, "one extension before the i2d");
        verify_function(&f).unwrap();
        let b2 = f.block(BlockId(2));
        assert!(b2.insts[0].is_extend(Some(Width::W32)), "inserted at the top of b2");
    }

    #[test]
    fn loops_only_guard() {
        let mut f = parse_function(
            "func @f(i32) -> f64 {\n\
             b0:\n    r1 = add.i32 r0, r0\n    r2 = i32tof64.f64 r1\n    ret r2\n}\n",
        )
        .unwrap();
        let stats = simple_insertion(&mut f, Target::Ia64, true);
        assert_eq!(stats.inserted, 0, "no loop, no insertion");
        let mut f2 = parse_function(
            "func @f(i32) -> f64 {\n\
             b0:\n    r1 = add.i32 r0, r0\n    r2 = i32tof64.f64 r1\n    ret r2\n}\n",
        )
        .unwrap();
        let stats2 = simple_insertion(&mut f2, Target::Ia64, false);
        assert_eq!(stats2.inserted, 1);
    }

    #[test]
    fn obvious_extension_suppresses_insertion() {
        // The value is extended by the immediately preceding instruction.
        let mut f = parse_function(
            "func @f(i32) -> f64 {\n\
             b0:\n    r1 = add.i32 r0, r0\n    r1 = extend.32 r1\n    r2 = i32tof64.f64 r1\n    ret r2\n}\n",
        )
        .unwrap();
        let stats = simple_insertion(&mut f, Target::Ia64, false);
        assert_eq!(stats.inserted, 0);
    }

    #[test]
    fn dummies_after_array_accesses() {
        let mut f = parse_function(
            "func @f(i32, i32) -> i32 {\n\
             b0:\n    r2 = newarray.i32 r0\n    r3 = aload.i32 r2, r1\n    astore.i32 r2, r1, r3\n    ret r3\n}\n",
        )
        .unwrap();
        let dummies = insert_dummies(&mut f, Target::Ia64);
        assert_eq!(dummies, 2);
        verify_function(&f).unwrap();
        let b0 = f.block(BlockId(0));
        assert!(matches!(b0.insts[2], Inst::JustExtended { dst: Reg(1), .. }));
    }

    #[test]
    fn no_dummy_when_index_overwritten() {
        // i = a[i]: the index register is the load destination.
        let mut f = parse_function(
            "func @f(i32, i32) -> i32 {\n\
             b0:\n    r2 = newarray.i32 r0\n    r1 = aload.i32 r2, r1\n    ret r1\n}\n",
        )
        .unwrap();
        assert_eq!(insert_dummies(&mut f, Target::Ia64), 0);
    }

    #[test]
    fn no_insertion_before_array_index_use() {
        // Array subscripts never receive anticipatory extensions — they
        // belong to the §3 theorems. Only the `ret` of the zero-extended
        // IA64 load result gets one.
        let mut f = parse_function(
            "func @f(i32, i32) -> i32 {\n\
             b0:\n    br b1\n\
             b1:\n    r2 = newarray.i32 r0\n    r3 = sub.i32 r1, r0\n    r4 = aload.i32 r2, r3\n    condbr gt.i32 r4, r0, b1, b2\n\
             b2:\n    ret r4\n}\n",
        )
        .unwrap();
        let stats = simple_insertion(&mut f, Target::Ia64, true);
        assert_eq!(stats.inserted, 1);
        assert_eq!(insert_dummies(&mut f, Target::Ia64), 1);
    }
}
