//! Phase (3)-3: elimination of sign extensions using UD/DU chains
//! (paper §2.3, the `EliminateOneExtend` / `AnalyzeUSE` / `AnalyzeDEF`
//! pseudocode).
//!
//! "In principle, a sign extension can be eliminated if its source
//! operand is already sign-extended or if the upper 32 bits of its
//! destination operand do not affect the correct execution of the
//! following instructions."
//!
//! The analysis of one extension walks the DU chain forward
//! (`AnalyzeUSE`) and, if some use requires the upper bits, the UD chain
//! backward (`AnalyzeDEF`). Array-subscript uses are discharged by the
//! Theorem 1–4 analysis in [`crate::array`]. Visited-flag memoization
//! matches the paper; cyclic queries resolve *pessimistically* (a cycle
//! with no external justification yields no facts), which keeps the
//! analysis sound even when extensions justify one another around loop
//! back edges.

use std::cell::OnceCell;
use std::collections::{HashMap, HashSet};

use sxe_analysis::{DefId, DefSite, FlowRanges, Interval, RangeAnalysis, UdDu};
use sxe_ir::semantics::{def_facts, param_facts, use_kind_of};
use sxe_ir::{ExtFacts, Function, Inst, InstId, Reg, Target, UseKind, Width};

/// Configuration for the elimination phase.
#[derive(Debug, Clone, Copy)]
pub struct ElimConfig {
    /// Target architecture.
    pub target: Target,
    /// Whether the array-subscript theorems are applied.
    pub array_analysis: bool,
    /// Guaranteed maximum array length (Theorem 4).
    pub max_array_len: u32,
}

/// Outcome counters for one elimination run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElimResult {
    /// Extension sites examined.
    pub examined: usize,
    /// Extensions eliminated.
    pub eliminated: usize,
    /// Eliminations that needed the array theorems.
    pub via_array: usize,
    /// The compile budget ran out before every extension was examined;
    /// the function is left in a valid partially-optimized state.
    pub exhausted: bool,
}

/// Examine the extensions named by `order` (hottest first when order
/// determination is on) and eliminate each one that the chains prove
/// redundant. Chains are maintained incrementally as extensions are
/// deleted.
pub fn run_elimination(
    f: &mut Function,
    udu: &mut UdDu,
    order: &[InstId],
    config: &ElimConfig,
    flow: &FlowRanges,
) -> ElimResult {
    run_elimination_budgeted(f, udu, order, config, flow, &sxe_ir::Budget::unlimited())
}

/// [`run_elimination`] under a compile budget: one fuel unit is spent per
/// examined extension, and an exhausted budget stops the loop early
/// rather than aborting — every extension already processed stays
/// eliminated, the rest simply remain (salvage, don't abort). Processing
/// hottest-first means the budget is spent where it pays.
pub fn run_elimination_budgeted(
    f: &mut Function,
    udu: &mut UdDu,
    order: &[InstId],
    config: &ElimConfig,
    flow: &FlowRanges,
    budget: &sxe_ir::Budget,
) -> ElimResult {
    let mut result = ElimResult::default();
    // Per-instruction flow intervals are shared (lazily, per block)
    // across every elimination: removing an extension never changes
    // low-32 values.
    let flow_states = LazyFlowStates::new(f.blocks.len(), flow, config.array_analysis);
    for &ext_id in order {
        if !budget.spend(1) {
            result.exhausted = true;
            break;
        }
        let (dst, src, from) = match *f.inst(ext_id) {
            Inst::Extend { dst, src, from } => (dst, src, from),
            _ => continue, // already removed or rewritten
        };
        result.examined += 1;
        let mut via_array = false;
        let eliminable = {
            let ra = RangeAnalysis::new(f, udu);
            let mut ctx = Analysis::new(f, udu, &ra, &flow_states, config, from);
            ctx.eliminate_one(ext_id, dst, src, &mut via_array)
        };
        if eliminable {
            if dst == src {
                udu.remove_transparent_def(f, ext_id);
                f.delete_inst(ext_id);
            } else {
                // Non-canonical extension (shouldn't survive conversion's
                // normalization, but handle it): the machine `sxt`
                // becomes a plain move.
                *f.inst_mut(ext_id) = Inst::Copy { dst, src, ty: from.ty() };
            }
            result.eliminated += 1;
            if via_array {
                result.via_array += 1;
            }
        }
    }
    result
}

/// Remove all dummy (`justext`) markers — the trivial final step of
/// phase (3)-3. Returns the number removed.
pub fn remove_dummies(f: &mut Function, udu: &mut UdDu) -> usize {
    let ids: Vec<(InstId, Reg, Reg, Width)> = f
        .insts()
        .filter_map(|(id, inst)| match *inst {
            Inst::JustExtended { dst, src, from } => Some((id, dst, src, from)),
            _ => None,
        })
        .collect();
    let n = ids.len();
    for (id, dst, src, from) in ids {
        if dst == src {
            udu.remove_transparent_def(f, id);
            f.delete_inst(id);
        } else {
            *f.inst_mut(id) = Inst::Copy { dst, src, ty: from.ty() };
        }
    }
    n
}

/// Chain-free variant of [`remove_dummies`] for recovery paths: after the
/// containment harness rolls a function back to a snapshot taken *inside*
/// step 3, leftover `justext` markers must still be scrubbed before the
/// function ships, and no up-to-date [`UdDu`] exists at that point.
/// Returns the number of markers removed.
pub fn strip_dummies(f: &mut Function) -> usize {
    let mut n = 0;
    for blk in &mut f.blocks {
        for inst in &mut blk.insts {
            if let Inst::JustExtended { dst, src, from } = *inst {
                *inst = if dst == src {
                    Inst::Nop
                } else {
                    Inst::Copy { dst, src, ty: from.ty() }
                };
                n += 1;
            }
        }
    }
    f.compact();
    n
}

/// Lazily materialized per-instruction flow intervals, shared across a
/// whole elimination run (block structure is fixed during phase (3)-3).
pub(crate) struct LazyFlowStates<'a> {
    flow: &'a FlowRanges,
    enabled: bool,
    blocks: Vec<OnceCell<Vec<Vec<Interval>>>>,
}

impl<'a> LazyFlowStates<'a> {
    fn new(num_blocks: usize, flow: &'a FlowRanges, enabled: bool) -> LazyFlowStates<'a> {
        LazyFlowStates {
            flow,
            enabled,
            blocks: (0..num_blocks).map(|_| OnceCell::new()).collect(),
        }
    }

    /// Intervals before instruction `id` (materializing its block on
    /// first touch). Tombstoning extensions between calls is harmless:
    /// their transfer is the low-32 identity.
    fn at(&self, f: &Function, id: InstId, r: Reg) -> Interval {
        if !self.enabled {
            return Interval::TOP;
        }
        let per_inst = self.blocks[id.block.index()]
            .get_or_init(|| self.flow.materialize_block(f, id.block));
        per_inst
            .get(id.index as usize)
            .map_or(Interval::TOP, |state| state[r.index()])
    }
}

/// The per-extension analysis context (the paper's USE/DEF/ARRAY flags).
pub(crate) struct Analysis<'a> {
    pub(crate) f: &'a Function,
    pub(crate) udu: &'a UdDu,
    pub(crate) ra: &'a RangeAnalysis<'a>,
    flow_states: &'a LazyFlowStates<'a>,
    pub(crate) target: Target,
    pub(crate) width: Width,
    pub(crate) array_enabled: bool,
    pub(crate) max_array_len: u32,
    /// The extension currently being analyzed; the array theorems look
    /// *through* it to its source (it must not justify itself).
    pub(crate) under_ext: Option<InstId>,
    use_flag: HashSet<(InstId, Reg)>,
    def_memo: HashMap<DefId, ExtFacts>,
    def_progress: HashSet<DefId>,
    pub(crate) arr_memo: HashMap<DefId, bool>,
    pub(crate) arr_progress: HashSet<DefId>,
}

impl std::fmt::Debug for Analysis<'_> {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("Analysis").field("width", &self.width).finish_non_exhaustive()
    }
}

impl<'a> Analysis<'a> {
    pub(crate) fn new(
        f: &'a Function,
        udu: &'a UdDu,
        ra: &'a RangeAnalysis<'a>,
        flow_states: &'a LazyFlowStates<'a>,
        config: &ElimConfig,
        width: Width,
    ) -> Analysis<'a> {
        Analysis {
            f,
            udu,
            ra,
            flow_states,
            target: config.target,
            width,
            array_enabled: config.array_analysis,
            max_array_len: config.max_array_len,
            under_ext: None,
            use_flag: HashSet::new(),
            def_memo: HashMap::new(),
            def_progress: HashSet::new(),
            arr_memo: HashMap::new(),
            arr_progress: HashSet::new(),
        }
    }

    /// The paper's `EliminateOneExtend`: returns `true` when the
    /// extension at `ext_id` can be eliminated.
    pub(crate) fn eliminate_one(
        &mut self,
        ext_id: InstId,
        _dst: Reg,
        src: Reg,
        via_array: &mut bool,
    ) -> bool {
        self.under_ext = Some(ext_id);
        // Forward: do any uses of the destination need the upper bits?
        let Some(def) = self.udu.def_of_inst(ext_id) else {
            return false;
        };
        let mut required = false;
        for (use_inst, reg) in self.udu.uses_of(def) {
            if self.analyze_use(use_inst, reg, true, via_array) {
                required = true;
                break;
            }
        }
        if !required {
            return true;
        }
        // Backward: is the source already sign-extended?
        *via_array = false;
        let feeding = self.udu.defs_reaching(ext_id, src);
        !feeding.is_empty() && feeding.iter().all(|&d| self.def_facts_rec(d).sign_extended)
    }

    /// The paper's `AnalyzeUSE`: `true` means the use requires the upper
    /// bits (the extension is necessary for it).
    fn analyze_use(
        &mut self,
        i: InstId,
        r: Reg,
        analyze_array: bool,
        via_array: &mut bool,
    ) -> bool {
        if !self.use_flag.insert((i, r)) {
            return false; // already traversed (paper's USE flag)
        }
        let inst = self.f.inst(i);
        match use_kind_of(inst, r, self.width) {
            None | Some(UseKind::Ignored) => false,
            Some(UseKind::Required) => true,
            Some(UseKind::ArrayIndex) => {
                if analyze_array && self.array_enabled {
                    let required = self.analyze_array(i, r);
                    if !required {
                        *via_array = true;
                    }
                    required
                } else {
                    true
                }
            }
            Some(UseKind::Transmits) => {
                // Case 2: the use needs the bits only if its own result's
                // bits are needed. Array analysis survives only through
                // value-preserving moves ("if it is impossible to analyze
                // array's address computation via I, ANALYZE_ARRAY =
                // FALSE").
                let next_array = analyze_array
                    && matches!(inst, Inst::Copy { .. } | Inst::JustExtended { .. });
                let Some(d) = self.udu.def_of_inst(i) else {
                    return false;
                };
                for (j, jr) in self.udu.uses_of(d) {
                    if self.analyze_use(j, jr, next_array, via_array) {
                        return true;
                    }
                }
                false
            }
        }
    }

    /// The paper's `AnalyzeDEF`, generalized to the two-fact lattice:
    /// what does definition `d` guarantee about the upper bits?
    ///
    /// Cyclic queries (loop-carried chains of copies/bitwise ops) resolve
    /// pessimistically to no-facts, so a cycle never justifies itself.
    pub(crate) fn def_facts_rec(&mut self, d: DefId) -> ExtFacts {
        if let Some(&facts) = self.def_memo.get(&d) {
            return facts;
        }
        if !self.def_progress.insert(d) {
            return ExtFacts::NONE;
        }
        let mut facts = match self.udu.site(d) {
            DefSite::Param(i) => param_facts(self.f.params[i].1, self.width),
            // The extension being eliminated must not justify anything by
            // its own effect (it is about to disappear): it contributes
            // only its source's facts. Loop-carried justification is
            // instead provided soundly by the dummy extensions placed
            // after bounds-checked array accesses.
            DefSite::Inst(id) if Some(id) == self.under_ext => match *self.f.inst(id) {
                Inst::Extend { src, .. } => self.operand_facts(id, src),
                _ => ExtFacts::NONE,
            },
            DefSite::Inst(id) => {
                let inst = self.f.inst(id).clone();
                let target = self.target;
                let width = self.width;
                def_facts(&inst, target, width, &mut |r: Reg| self.operand_facts(id, r))
            }
        };
        if !facts.sign_extended {
            facts = self.refine_with_ranges(d, facts);
        }
        self.def_progress.remove(&d);
        self.def_memo.insert(d, facts);
        facts
    }

    /// Value-range refinement of `AnalyzeDEF`: if every operand of a
    /// 32-bit arithmetic definition is sign-extended and the value-range
    /// analysis proves the mathematical result cannot leave the `i32`
    /// range, then the full 64-bit machine result equals the exact result
    /// and is therefore sign-extended (non-negative ranges additionally
    /// give upper-zero). This is the def-side counterpart of the paper's
    /// §3 use of "value range analysis techniques [4, 7]", and like the
    /// array theorems it is enabled by the `array` feature (the paper
    /// introduces value ranges only with §3).
    fn refine_with_ranges(&mut self, d: DefId, facts: ExtFacts) -> ExtFacts {
        if self.width != Width::W32 || !self.array_enabled {
            return facts;
        }
        let DefSite::Inst(id) = self.udu.site(d) else { return facts };
        let Inst::Bin { op, ty, lhs, rhs, .. } = *self.f.inst(id) else {
            return facts;
        };
        use sxe_ir::BinOp;
        let eligible = ty != sxe_ir::Ty::F64
            && ty != sxe_ir::Ty::I64
            && matches!(
                op,
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Shl
            );
        if !eligible {
            return facts;
        }
        if !self.operand_facts(id, lhs).sign_extended
            || !self.operand_facts(id, rhs).sign_extended
        {
            return facts;
        }
        // A non-TOP interval certifies the exact result fits in i32 (the
        // transfer functions return TOP whenever a wrap is possible).
        // Combine the UD-chain view with flow-sensitive operand intervals.
        let rl = self.range_at(id, lhs);
        let rr = self.range_at(id, rhs);
        let range = self
            .ra
            .range_of(d)
            .intersect(sxe_analysis::binop_range(op, ty, rl, rr));
        if range.is_top() {
            return facts;
        }
        ExtFacts { sign_extended: true, upper_zero: range.is_nonneg() }
    }

    /// Combined value range of `r` at `id`: the UD-chain join intersected
    /// with the flow-sensitive interval (branch-refined) in force there.
    pub(crate) fn range_at(&mut self, id: InstId, r: Reg) -> Interval {
        let ud = self.ra.range_at(id, r);
        ud.intersect(self.flow_range_at(id, r))
    }

    fn flow_range_at(&self, id: InstId, r: Reg) -> Interval {
        self.flow_states.at(self.f, id, r)
    }

    /// Meet of facts over every definition reaching the use of `r` at
    /// `id`; no-facts when no definition information exists.
    pub(crate) fn operand_facts(&mut self, id: InstId, r: Reg) -> ExtFacts {
        let defs = self.udu.defs_reaching(id, r);
        if defs.is_empty() {
            return ExtFacts::NONE;
        }
        let mut acc = ExtFacts::NONNEG;
        for d in defs {
            acc = acc.meet(self.def_facts_rec(d));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, BlockId, Cfg};

    fn eliminate_all(src: &str, array: bool) -> (Function, ElimResult) {
        let mut f = parse_function(src).unwrap();
        crate::insertion::insert_dummies(&mut f, Target::Ia64);
        let cfg = Cfg::compute(&f);
        let mut udu = UdDu::compute(&f, &cfg);
        let fr = crate::order::static_freq(&f, &cfg);
        let order = crate::order::elimination_order(&f, &cfg, Some(&fr));
        let config = ElimConfig {
            target: Target::Ia64,
            array_analysis: array,
            max_array_len: 0x7fff_ffff,
        };
        let flow = sxe_analysis::FlowRanges::compute(&f, &cfg);
        let res = run_elimination(&mut f, &mut udu, &order, &config, &flow);
        remove_dummies(&mut f, &mut udu);
        f.compact();
        (f, res)
    }

    #[test]
    fn eliminates_when_no_use_needs_upper_bits() {
        // The extension feeds only a 32-bit store and a 32-bit compare.
        let (f, res) = eliminate_all(
            "func @f(i32, i32) {\n\
             b0:\n    r2 = newarray.i32 r0\n    r3 = add.i32 r0, r1\n    r3 = extend.32 r3\n    r4 = const.i32 0\n    astore.i32 r2, r4, r3\n    ret\n}\n",
            false,
        );
        assert_eq!(res.eliminated, 1);
        assert_eq!(f.count_extends(None), 0);
    }

    #[test]
    fn keeps_when_i2d_needs_it() {
        let (f, res) = eliminate_all(
            "func @f(i32, i32) -> f64 {\n\
             b0:\n    r2 = add.i32 r0, r1\n    r2 = extend.32 r2\n    r3 = i32tof64.f64 r2\n    ret r3\n}\n",
            false,
        );
        assert_eq!(res.eliminated, 0);
        assert_eq!(f.count_extends(None), 1);
    }

    #[test]
    fn eliminates_when_source_already_extended() {
        // Figure 3 (5)/(7): the AND with a non-negative constant makes
        // the value sign-extended, so the following extension of the
        // same value is redundant even though the ret requires it.
        let (f, res) = eliminate_all(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 268435455\n    r2 = and.i32 r0, r1\n    r2 = extend.32 r2\n    ret r2\n}\n",
            false,
        );
        assert_eq!(res.eliminated, 1);
        assert_eq!(f.count_extends(None), 0);
    }

    #[test]
    fn second_limitation_def_side_rescue() {
        // j = j & C; j = extend(j); d += (double) j — backward demand
        // alone cannot remove the extension (i2d requires it), but the
        // UD direction proves the source extended (paper limitation 2).
        let (f, res) = eliminate_all(
            "func @f(i32) -> f64 {\n\
             b0:\n    r1 = const.i32 255\n    r2 = and.i32 r0, r1\n    r2 = extend.32 r2\n    r3 = i32tof64.f64 r2\n    ret r3\n}\n",
            false,
        );
        assert_eq!(res.eliminated, 1);
        assert_eq!(f.count_extends(None), 0);
    }

    #[test]
    fn demand_transmits_through_add() {
        // extend -> add -> i2d: required through Case 2.
        let (f, res) = eliminate_all(
            "func @f(i32, i32) -> f64 {\n\
             b0:\n    r2 = mul.i32 r0, r1\n    r2 = extend.32 r2\n    r3 = add.i32 r2, r1\n    r4 = i32tof64.f64 r3\n    ret r4\n}\n",
            false,
        );
        assert_eq!(res.eliminated, 0);
        let _ = f;
    }

    #[test]
    fn array_index_required_without_array_analysis() {
        let src = "func @f(i32, i32) -> i32 {\n\
             b0:\n    r2 = newarray.i32 r0\n    r3 = and.i32 r1, r0\n    br b1\n\
             b1:\n    r4 = const.i32 1\n    r3 = sub.i32 r3, r4\n    r3 = extend.32 r3\n    r5 = aload.i32 r2, r3\n    condbr gt.i32 r3, r4, b1, b2\n\
             b2:\n    ret r5\n}\n";
        let (f, res) = eliminate_all(src, false);
        assert_eq!(res.eliminated, 0, "index extension must stay without theorems");
        assert_eq!(f.count_extends(None), 1);

        // With array analysis the countdown-loop index is discharged by
        // Theorem 4 (j = -1 within [-1, 0x7fffffff]).
        let (f2, res2) = eliminate_all(src, true);
        assert_eq!(res2.eliminated, 1);
        assert_eq!(res2.via_array, 1);
        assert_eq!(f2.count_extends(None), 0);
    }

    #[test]
    fn mutual_justification_is_not_circular() {
        // Two extensions of the same register around a loop must not
        // both disappear by citing each other: after the hot one is
        // removed, the cold one's analysis sees the raw add and keeps it.
        let src = "func @f(i32, i32) -> i32 {\n\
             b0:\n    r2 = newarray.i32 r0\n    r3 = add.i32 r0, r1\n    r3 = extend.32 r3\n    br b1\n\
             b1:\n    r4 = const.i32 1\n    r3 = add.i32 r3, r4\n    r3 = extend.32 r3\n    r5 = aload.i32 r2, r3\n    condbr gt.i32 r5, r4, b1, b2\n\
             b2:\n    ret r5\n}\n";
        let (f, res) = eliminate_all(src, true);
        // The loop extension is discharged by Theorem 2/4; the outer one
        // must survive (it justifies the loop entry).
        assert_eq!(res.eliminated, 1);
        assert_eq!(f.count_extends(None), 1);
        assert!(f.block(BlockId(0)).insts.iter().any(|i| i.is_extend(None)));
        assert!(!f.block(BlockId(1)).insts.iter().any(|i| i.is_extend(None)));
    }

    #[test]
    fn dummy_enables_later_elimination_and_is_removed() {
        // After a[i], a dummy asserts i extended; the later extension of
        // i before a 64-bit compare is then redundant.
        let src = "func @f(i32, i32) -> i32 {\n\
             b0:\n    r2 = newarray.i32 r0\n    r3 = aload.i32 r2, r1\n    r1 = justext.32 r1\n    r1 = extend.32 r1\n    condbr gt.i64 r1, r3, b1, b2\n\
             b1:\n    ret r3\n\
             b2:\n    ret r1\n}\n";
        let (f, res) = eliminate_all(src, false);
        assert_eq!(res.eliminated, 1);
        assert_eq!(f.count_extends(None), 0);
        // Dummies are gone too.
        assert!(!f
            .insts()
            .any(|(_, i)| matches!(i, Inst::JustExtended { .. })));
    }
}
