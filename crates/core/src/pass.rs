//! Orchestration of Figure 5 step 3: insertion, order determination, and
//! elimination, per configured [`Variant`].

use std::time::{Duration, Instant};

use sxe_analysis::{FlowRanges, Freq, UdDu};
use sxe_ir::{Cfg, Function, Module};

use crate::config::{SxeConfig, SxeStats};
use crate::eliminate::{remove_dummies, run_elimination, ElimConfig};
use crate::insertion::simple_insertion;
use crate::order::{elimination_order, static_freq};
use crate::pde::pde_insertion;

/// Wall-clock breakdown of step 3, mirroring the paper's Table 3 split
/// between "sign extension optimizations" and "UD/DU chain creation".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Step3Timing {
    /// Time spent building the UD/DU chains.
    pub chain_creation: Duration,
    /// Time spent in the sign-extension optimization proper (insertion,
    /// order determination, elimination, dummy removal).
    pub sxe_opt: Duration,
}

impl Step3Timing {
    /// Accumulate another function's timing.
    pub fn merge(&mut self, o: Step3Timing) {
        self.chain_creation += o.chain_creation;
        self.sxe_opt += o.sxe_opt;
    }
}

/// Run the sign-extension optimization (Fig 5 step 3) on one function
/// that has already been converted to 64-bit form (step 1) and generally
/// optimized (step 2).
///
/// `profile` optionally supplies measured per-block execution counts for
/// order determination (the paper's interpreter profile); it must match
/// the function's current block count or it is ignored.
pub fn run_step3(f: &mut Function, config: &SxeConfig, profile: Option<&[u64]>) -> SxeStats {
    run_step3_timed(f, config, profile).0
}

/// Like [`run_step3`], additionally reporting the Table 3 timing split.
pub fn run_step3_timed(
    f: &mut Function,
    config: &SxeConfig,
    profile: Option<&[u64]>,
) -> (SxeStats, Step3Timing) {
    let variant = config.variant;
    let mut stats = SxeStats::default();
    let mut timing = Step3Timing::default();

    if variant.first_algorithm() {
        let t0 = Instant::now();
        stats.examined = f.count_extends(None);
        stats.eliminated = crate::first_algorithm::run(f, &config.widths);
        timing.sxe_opt = t0.elapsed();
        return (stats, timing);
    }
    if !variant.uses_udu() {
        return (stats, timing); // baseline / gen-use: no step-3 optimization
    }

    let t0 = Instant::now();
    // Phase (3)-1: insertion. Dummy markers after array accesses carry
    // the bounds-check facts and accompany every chain-based run; real
    // anticipatory extensions depend on the `insert` feature.
    stats.dummies = crate::insertion::insert_dummies(f, config.target);
    if variant.insertion() {
        let ins = if variant.pde_insertion() {
            pde_insertion(f, config.target, true)
        } else {
            simple_insertion(f, config.target, true)
        };
        stats.inserted = ins.inserted;
    }
    timing.sxe_opt += t0.elapsed();

    // Chains are built once, after insertion, and maintained
    // incrementally through the eliminations.
    let t_chain = Instant::now();
    let cfg = Cfg::compute(f);
    let mut udu = UdDu::compute(f, &cfg);
    timing.chain_creation = t_chain.elapsed();
    let t1 = Instant::now();
    // Flow-sensitive interval analysis: intervals of low-32 values are
    // unaffected by inserting/removing extensions, so one computation
    // serves every elimination.
    let flow = FlowRanges::compute(f, &cfg);

    // Phase (3)-2: order determination.
    let freq_storage: Option<Freq> = if variant.order_determination() {
        match profile {
            Some(counts) if config.use_profile && counts.len() == f.blocks.len() => {
                Some(Freq::from_counts(counts))
            }
            _ => Some(static_freq(f, &cfg)),
        }
    } else {
        None
    };
    let mut order = elimination_order(f, &cfg, freq_storage.as_ref());
    order.retain(|&id| match f.inst(id) {
        sxe_ir::Inst::Extend { from, .. } => config.widths.contains(from),
        _ => false,
    });

    // Phase (3)-3: elimination.
    let ec = ElimConfig {
        target: config.target,
        array_analysis: variant.array_analysis(),
        max_array_len: config.max_array_len,
    };
    let res = run_elimination(f, &mut udu, &order, &ec, &flow);
    stats.examined = res.examined;
    stats.eliminated = res.eliminated;
    stats.eliminated_via_array = res.via_array;

    remove_dummies(f, &mut udu);
    if config.eliminate_zext {
        crate::zext::eliminate_zero_extensions(f, config.target);
    }
    f.compact();
    timing.sxe_opt += t1.elapsed();
    (stats, timing)
}

/// Per-function block-count profiles for a module.
pub type ModuleProfile = Vec<Vec<u64>>;

/// Run step 3 on every function of a module.
pub fn run_step3_module(
    m: &mut Module,
    config: &SxeConfig,
    profile: Option<&ModuleProfile>,
) -> SxeStats {
    let mut stats = SxeStats::default();
    for (i, f) in m.functions.iter_mut().enumerate() {
        let p = profile.and_then(|p| p.get(i)).map(Vec::as_slice);
        stats.merge(run_step3(f, config, p));
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::convert::{convert_function, GenStrategy};
    use sxe_ir::{parse_function, verify_function, Target};

    /// Paper Figure 3 / Figure 7 shaped kernel, pre-conversion:
    /// a count-down loop over an array with a mask and a float sum after.
    const KERNEL: &str = "\
func @kernel(i32, i32) -> f64 {
b0:
    r2 = newarray.i32 r0
    r3 = const.i32 0
    br b1
b1:
    r4 = const.i32 1
    r0 = sub.i32 r0, r4
    r5 = aload.i32 r2, r0
    r6 = const.i32 268435455
    r5 = and.i32 r5, r6
    r3 = add.i32 r3, r5
    condbr gt.i32 r0, r1, b1, b2
b2:
    r7 = i32tof64.f64 r3
    ret r7
}
";

    fn converted() -> Function {
        let mut f = parse_function(KERNEL).unwrap();
        convert_function(&mut f, Target::Ia64, GenStrategy::AfterDef);
        f
    }

    #[test]
    fn all_variant_clears_the_loop() {
        let mut f = converted();
        let gen = f.count_extends(None);
        assert!(gen >= 2, "conversion generated loop extensions");
        let stats = run_step3(&mut f, &SxeConfig::for_variant(Variant::All), None);
        verify_function(&f).unwrap();
        assert!(stats.eliminated >= 2);
        // The loop body (b1) must hold no extensions: the index is
        // discharged by Theorem 4, the accumulator moved after the loop.
        let in_loop = f
            .block(sxe_ir::BlockId(1))
            .insts
            .iter()
            .filter(|i| i.is_extend(None))
            .count();
        assert_eq!(in_loop, 0, "loop body clean:\n{f}");
    }

    #[test]
    fn variant_ordering_on_kernel() {
        // Static extension counts: all <= array <= basic <= baseline.
        let count_for = |v: Variant| {
            let mut f = converted();
            run_step3(&mut f, &SxeConfig::for_variant(v), None);
            f.count_extends(None)
        };
        let baseline = count_for(Variant::Baseline);
        let basic = count_for(Variant::BasicUdDu);
        let array = count_for(Variant::Array);
        let all = count_for(Variant::All);
        assert!(basic <= baseline);
        assert!(array <= basic);
        assert!(all <= array, "all={all} array={array}");
    }

    #[test]
    fn baseline_is_untouched() {
        let mut f = converted();
        let before = f.count_extends(None);
        let stats = run_step3(&mut f, &SxeConfig::for_variant(Variant::Baseline), None);
        assert_eq!(stats.eliminated, 0);
        assert_eq!(f.count_extends(None), before);
    }

    #[test]
    fn first_algorithm_runs() {
        let mut f = converted();
        let before = f.count_extends(None);
        let stats =
            run_step3(&mut f, &SxeConfig::for_variant(Variant::FirstAlgorithm), None);
        assert!(stats.eliminated > 0);
        assert!(f.count_extends(None) < before);
        verify_function(&f).unwrap();
    }

    #[test]
    fn dummies_never_survive() {
        for v in Variant::ALL {
            let mut f = converted();
            run_step3(&mut f, &SxeConfig::for_variant(v), None);
            assert!(
                !f.insts().any(|(_, i)| matches!(i, sxe_ir::Inst::JustExtended { .. })),
                "{v} left dummies"
            );
        }
    }

    #[test]
    fn profile_accepted_when_lengths_match() {
        let mut f = converted();
        let counts = vec![1u64; f.blocks.len()];
        let mut config = SxeConfig::for_variant(Variant::All);
        config.use_profile = true;
        let stats = run_step3(&mut f, &config, Some(&counts));
        assert!(stats.eliminated > 0);
    }
}
