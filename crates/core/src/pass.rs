//! Orchestration of Figure 5 step 3: insertion, order determination, and
//! elimination, per configured [`Variant`].

use std::time::{Duration, Instant};

use sxe_analysis::{AnalysisCache, FlowRanges, Freq, UdDu};
use sxe_ir::{Budget, Cfg, Function, Inst, InstId, Module};

use crate::config::{SxeConfig, SxeStats};
use crate::eliminate::{remove_dummies, run_elimination_budgeted, ElimConfig};
use crate::insertion::simple_insertion;
use crate::order::{elimination_order, static_freq};
use crate::pde::pde_insertion;

/// Wall-clock breakdown of step 3, mirroring the paper's Table 3 split
/// between "sign extension optimizations" and "UD/DU chain creation".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Step3Timing {
    /// Time spent building the UD/DU chains.
    pub chain_creation: Duration,
    /// Time spent in the sign-extension optimization proper (insertion,
    /// order determination, elimination, dummy removal).
    pub sxe_opt: Duration,
}

impl Step3Timing {
    /// Accumulate another function's timing.
    pub fn merge(&mut self, o: Step3Timing) {
        self.chain_creation += o.chain_creation;
        self.sxe_opt += o.sxe_opt;
    }
}

/// Run the sign-extension optimization (Fig 5 step 3) on one function
/// that has already been converted to 64-bit form (step 1) and generally
/// optimized (step 2).
///
/// `profile` optionally supplies measured per-block execution counts for
/// order determination (the paper's interpreter profile); it must match
/// the function's current block count or it is ignored.
pub fn run_step3(f: &mut Function, config: &SxeConfig, profile: Option<&[u64]>) -> SxeStats {
    run_step3_timed(f, config, profile).0
}

/// Like [`run_step3`], additionally reporting the Table 3 timing split.
pub fn run_step3_timed(
    f: &mut Function,
    config: &SxeConfig,
    profile: Option<&[u64]>,
) -> (SxeStats, Step3Timing) {
    let variant = config.variant;
    let mut stats = SxeStats::default();
    let mut timing = Step3Timing::default();

    if variant.first_algorithm() {
        let t0 = Instant::now();
        stats = step3_first(f, config);
        timing.sxe_opt = t0.elapsed();
        return (stats, timing);
    }
    if !variant.uses_udu() {
        return (stats, timing); // baseline / gen-use: no step-3 optimization
    }

    let t0 = Instant::now();
    let ins = step3_insertion(f, config);
    stats.dummies = ins.dummies;
    stats.inserted = ins.inserted;
    let order = step3_order(f, config, profile);
    timing.sxe_opt += t0.elapsed();

    let t1 = Instant::now();
    let out = step3_eliminate(f, config, &order, &Budget::unlimited());
    stats.examined = out.examined;
    stats.eliminated = out.eliminated;
    stats.eliminated_via_array = out.via_array;
    timing.chain_creation = out.chain_creation;
    timing.sxe_opt += t1.elapsed().saturating_sub(out.chain_creation);
    (stats, timing)
}

/// Counters from the [`step3_insertion`] stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertionOutcome {
    /// Dummy (`justext`) markers inserted after array accesses.
    pub dummies: usize,
    /// Real anticipatory extensions inserted.
    pub inserted: usize,
}

/// Counters and timing from the [`step3_eliminate`] stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElimOutcome {
    /// Extension sites examined.
    pub examined: usize,
    /// Extensions eliminated.
    pub eliminated: usize,
    /// Eliminations that needed the array theorems.
    pub via_array: usize,
    /// Time spent building the UD/DU chains (Table 3's separate column).
    pub chain_creation: Duration,
    /// The budget ran out before every extension was examined.
    pub exhausted: bool,
}

/// Stage (3)-1, standalone: dummy-marker and anticipatory-extension
/// insertion. One of the separately containable stages the `sxe-jit`
/// harness wraps in a panic/verify boundary.
pub fn step3_insertion(f: &mut Function, config: &SxeConfig) -> InsertionOutcome {
    // Dummy markers after array accesses carry the bounds-check facts and
    // accompany every chain-based run; real anticipatory extensions
    // depend on the `insert` feature.
    let dummies = crate::insertion::insert_dummies(f, config.target);
    let inserted = if config.variant.insertion() {
        let ins = if config.variant.pde_insertion() {
            pde_insertion(f, config.target, true)
        } else {
            simple_insertion(f, config.target, true)
        };
        ins.inserted
    } else {
        0
    };
    InsertionOutcome { dummies, inserted }
}

/// [`step3_insertion`] that keeps a memoized [`AnalysisCache`] honest:
/// insertion rewrites `f` whenever it places a marker or extension, so
/// the function's cache entry is invalidated when (and only when) the
/// stage changed something.
pub fn step3_insertion_cached(
    f: &mut Function,
    config: &SxeConfig,
    cache: &mut AnalysisCache,
) -> InsertionOutcome {
    let out = step3_insertion(f, config);
    cache.note_rewrites(&f.name, out.dummies + out.inserted);
    out
}

/// Stage (3)-2, standalone: order determination. Returns the extension
/// sites to examine, hottest-first when the variant orders by frequency,
/// already filtered to the configured widths. The ids are only valid
/// until `f` is next mutated.
#[must_use]
pub fn step3_order(f: &Function, config: &SxeConfig, profile: Option<&[u64]>) -> Vec<InstId> {
    order_with(f, config, profile, &Cfg::compute(f))
}

/// [`step3_order`] drawing the CFG from a memoized [`AnalysisCache`]
/// instead of recomputing it. The cache entry stays valid afterwards
/// (ordering does not mutate `f`), so the following
/// [`step3_eliminate_cached`] gets it for free.
#[must_use]
pub fn step3_order_cached(
    f: &Function,
    config: &SxeConfig,
    profile: Option<&[u64]>,
    cache: &mut AnalysisCache,
) -> Vec<InstId> {
    let cfg = cache.cfg(f);
    order_with(f, config, profile, &cfg)
}

fn order_with(f: &Function, config: &SxeConfig, profile: Option<&[u64]>, cfg: &Cfg) -> Vec<InstId> {
    let freq_storage: Option<Freq> = if config.variant.order_determination() {
        match profile {
            Some(counts) if config.use_profile && counts.len() == f.blocks.len() => {
                Some(Freq::from_counts(counts))
            }
            _ => Some(static_freq(f, cfg)),
        }
    } else {
        None
    };
    let mut order = elimination_order(f, cfg, freq_storage.as_ref());
    order.retain(|&id| match f.inst(id) {
        Inst::Extend { from, .. } => config.widths.contains(from),
        _ => false,
    });
    order
}

/// Recovery fallback for [`step3_order`]: a plain program-order scan of
/// the eligible extensions, with no frequency analysis. Used when the
/// order stage itself was rolled back — elimination can still proceed,
/// just without the hottest-first payoff.
#[must_use]
pub fn fallback_order(f: &Function, config: &SxeConfig) -> Vec<InstId> {
    f.insts()
        .filter_map(|(id, inst)| match inst {
            Inst::Extend { from, .. } if config.widths.contains(from) => Some(id),
            _ => None,
        })
        .collect()
}

/// Stage (3)-3, standalone: chain creation, flow analysis, budgeted
/// elimination over `order`, dummy removal, and zero-extension cleanup.
pub fn step3_eliminate(
    f: &mut Function,
    config: &SxeConfig,
    order: &[InstId],
    budget: &Budget,
) -> ElimOutcome {
    // Chains are built once, after insertion, and maintained
    // incrementally through the eliminations.
    let t_chain = Instant::now();
    let cfg = Cfg::compute(f);
    let udu = UdDu::compute(f, &cfg);
    let chain_creation = t_chain.elapsed();
    eliminate_with(f, config, order, budget, &cfg, udu, chain_creation)
}

/// [`step3_eliminate`] drawing the CFG and UD/DU chains from a memoized
/// [`AnalysisCache`]. The CFG is typically a hit left behind by
/// [`step3_order_cached`]; the chains are moved out of the cache because
/// elimination maintains them incrementally while rewriting. The cache
/// entry is invalidated afterwards — elimination rewrites `f`.
pub fn step3_eliminate_cached(
    f: &mut Function,
    config: &SxeConfig,
    order: &[InstId],
    budget: &Budget,
    cache: &mut AnalysisCache,
) -> ElimOutcome {
    let t_chain = Instant::now();
    let cfg = cache.cfg(f);
    let udu = cache.take_udu(f);
    let chain_creation = t_chain.elapsed();
    let out = eliminate_with(f, config, order, budget, &cfg, udu, chain_creation);
    cache.invalidate(&f.name);
    out
}

fn eliminate_with(
    f: &mut Function,
    config: &SxeConfig,
    order: &[InstId],
    budget: &Budget,
    cfg: &Cfg,
    mut udu: UdDu,
    chain_creation: Duration,
) -> ElimOutcome {
    // Flow-sensitive interval analysis: intervals of low-32 values are
    // unaffected by inserting/removing extensions, so one computation
    // serves every elimination.
    let flow = FlowRanges::compute(f, cfg);

    let ec = ElimConfig {
        target: config.target,
        array_analysis: config.variant.array_analysis(),
        max_array_len: config.max_array_len,
    };
    let res = run_elimination_budgeted(f, &mut udu, order, &ec, &flow, budget);

    remove_dummies(f, &mut udu);
    if config.eliminate_zext {
        crate::zext::eliminate_zero_extensions(f, config.target);
    }
    f.compact();
    ElimOutcome {
        examined: res.examined,
        eliminated: res.eliminated,
        via_array: res.via_array,
        chain_creation,
        exhausted: res.exhausted,
    }
}

/// The paper's §3 "first algorithm" as a standalone stage.
pub fn step3_first(f: &mut Function, config: &SxeConfig) -> SxeStats {
    SxeStats {
        examined: f.count_extends(None),
        eliminated: crate::first_algorithm::run(f, &config.widths),
        ..SxeStats::default()
    }
}

/// Per-function block-count profiles for a module.
pub type ModuleProfile = Vec<Vec<u64>>;

/// Run step 3 on every function of a module.
pub fn run_step3_module(
    m: &mut Module,
    config: &SxeConfig,
    profile: Option<&ModuleProfile>,
) -> SxeStats {
    let mut stats = SxeStats::default();
    for (i, f) in m.functions.iter_mut().enumerate() {
        let p = profile.and_then(|p| p.get(i)).map(Vec::as_slice);
        stats.merge(run_step3(f, config, p));
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::convert::{convert_function, GenStrategy};
    use sxe_ir::{parse_function, verify_function, Target};

    /// Paper Figure 3 / Figure 7 shaped kernel, pre-conversion:
    /// a count-down loop over an array with a mask and a float sum after.
    const KERNEL: &str = "\
func @kernel(i32, i32) -> f64 {
b0:
    r2 = newarray.i32 r0
    r3 = const.i32 0
    br b1
b1:
    r4 = const.i32 1
    r0 = sub.i32 r0, r4
    r5 = aload.i32 r2, r0
    r6 = const.i32 268435455
    r5 = and.i32 r5, r6
    r3 = add.i32 r3, r5
    condbr gt.i32 r0, r1, b1, b2
b2:
    r7 = i32tof64.f64 r3
    ret r7
}
";

    fn converted() -> Function {
        let mut f = parse_function(KERNEL).unwrap();
        convert_function(&mut f, Target::Ia64, GenStrategy::AfterDef);
        f
    }

    #[test]
    fn all_variant_clears_the_loop() {
        let mut f = converted();
        let gen = f.count_extends(None);
        assert!(gen >= 2, "conversion generated loop extensions");
        let stats = run_step3(&mut f, &SxeConfig::for_variant(Variant::All), None);
        verify_function(&f).unwrap();
        assert!(stats.eliminated >= 2);
        // The loop body (b1) must hold no extensions: the index is
        // discharged by Theorem 4, the accumulator moved after the loop.
        let in_loop = f
            .block(sxe_ir::BlockId(1))
            .insts
            .iter()
            .filter(|i| i.is_extend(None))
            .count();
        assert_eq!(in_loop, 0, "loop body clean:\n{f}");
    }

    #[test]
    fn variant_ordering_on_kernel() {
        // Static extension counts: all <= array <= basic <= baseline.
        let count_for = |v: Variant| {
            let mut f = converted();
            run_step3(&mut f, &SxeConfig::for_variant(v), None);
            f.count_extends(None)
        };
        let baseline = count_for(Variant::Baseline);
        let basic = count_for(Variant::BasicUdDu);
        let array = count_for(Variant::Array);
        let all = count_for(Variant::All);
        assert!(basic <= baseline);
        assert!(array <= basic);
        assert!(all <= array, "all={all} array={array}");
    }

    #[test]
    fn baseline_is_untouched() {
        let mut f = converted();
        let before = f.count_extends(None);
        let stats = run_step3(&mut f, &SxeConfig::for_variant(Variant::Baseline), None);
        assert_eq!(stats.eliminated, 0);
        assert_eq!(f.count_extends(None), before);
    }

    #[test]
    fn first_algorithm_runs() {
        let mut f = converted();
        let before = f.count_extends(None);
        let stats =
            run_step3(&mut f, &SxeConfig::for_variant(Variant::FirstAlgorithm), None);
        assert!(stats.eliminated > 0);
        assert!(f.count_extends(None) < before);
        verify_function(&f).unwrap();
    }

    #[test]
    fn dummies_never_survive() {
        for v in Variant::ALL {
            let mut f = converted();
            run_step3(&mut f, &SxeConfig::for_variant(v), None);
            assert!(
                !f.insts().any(|(_, i)| matches!(i, sxe_ir::Inst::JustExtended { .. })),
                "{v} left dummies"
            );
        }
    }

    #[test]
    fn staged_api_matches_monolith() {
        let mut staged = converted();
        let mut mono = converted();
        let config = SxeConfig::for_variant(Variant::All);
        let (mono_stats, _) = run_step3_timed(&mut mono, &config, None);

        step3_insertion(&mut staged, &config);
        let order = step3_order(&staged, &config, None);
        let out = step3_eliminate(&mut staged, &config, &order, &Budget::unlimited());
        assert!(!out.exhausted);
        assert_eq!(out.eliminated, mono_stats.eliminated);
        assert_eq!(staged, mono);
    }

    #[test]
    fn cached_staged_api_matches_uncached() {
        let mut cached = converted();
        let mut plain = converted();
        let config = SxeConfig::for_variant(Variant::All);

        step3_insertion(&mut plain, &config);
        let order = step3_order(&plain, &config, None);
        let out = step3_eliminate(&mut plain, &config, &order, &Budget::unlimited());

        let mut cache = AnalysisCache::new();
        step3_insertion_cached(&mut cached, &config, &mut cache);
        let order_c = step3_order_cached(&cached, &config, None, &mut cache);
        assert_eq!(order_c, order);
        let out_c =
            step3_eliminate_cached(&mut cached, &config, &order_c, &Budget::unlimited(), &mut cache);
        assert_eq!(out_c.eliminated, out.eliminated);
        assert_eq!(cached, plain);
        // Order left a cfg behind for elimination to reuse.
        assert!(cache.hits() >= 1, "eliminate reused the order stage's cfg");
        // Elimination rewrote the function, so the entry was invalidated.
        assert!(cache.generation("kernel") >= 1);
    }

    #[test]
    fn exhausted_budget_salvages_partial_result() {
        let mut f = converted();
        let config = SxeConfig::for_variant(Variant::All);
        step3_insertion(&mut f, &config);
        let order = step3_order(&f, &config, None);
        assert!(order.len() >= 2, "need at least two sites for a partial run");
        let budget = Budget::new(1, None);
        let out = step3_eliminate(&mut f, &config, &order, &budget);
        assert!(out.exhausted);
        assert_eq!(out.examined, 1);
        verify_function(&f).unwrap();
        assert!(
            !f.insts().any(|(_, i)| matches!(i, sxe_ir::Inst::JustExtended { .. })),
            "dummies scrubbed even on exhaustion"
        );
    }

    #[test]
    fn fallback_order_covers_all_eligible_extends() {
        let mut f = converted();
        let config = SxeConfig::for_variant(Variant::All);
        step3_insertion(&mut f, &config);
        let fallback = fallback_order(&f, &config);
        let mut principal = step3_order(&f, &config, None);
        principal.sort_unstable();
        let mut sorted = fallback.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, principal, "same sites, different order");
    }

    #[test]
    fn strip_dummies_scrubs_markers_without_chains() {
        let mut f = converted();
        let config = SxeConfig::for_variant(Variant::All);
        step3_insertion(&mut f, &config);
        assert!(f.insts().any(|(_, i)| matches!(i, sxe_ir::Inst::JustExtended { .. })));
        let n = crate::eliminate::strip_dummies(&mut f);
        assert!(n > 0);
        assert!(!f.insts().any(|(_, i)| matches!(i, sxe_ir::Inst::JustExtended { .. })));
        verify_function(&f).unwrap();
    }

    #[test]
    fn profile_accepted_when_lengths_match() {
        let mut f = converted();
        let counts = vec![1u64; f.blocks.len()];
        let mut config = SxeConfig::for_variant(Variant::All);
        config.use_profile = true;
        let stats = run_step3(&mut f, &config, Some(&counts));
        assert!(stats.eliminated > 0);
    }
}
