//! Phase (3)-2: order determination for elimination (paper §2.2).
//!
//! "It is best to eliminate sign extensions starting from the most
//! frequently executed region. … We sort basic blocks in the order of
//! their execution frequency."
//!
//! With order determination disabled, eliminations are performed "in the
//! reverse depth first search order, the same order in which backward
//! dataflow analysis is performed" — blocks in postorder, instructions
//! backward within each block.

use sxe_analysis::Freq;
use sxe_ir::{Cfg, DomTree, Function, InstId, LoopForest};

/// Produce the order in which extension instructions are examined for
/// elimination.
///
/// `freq` supplies block frequencies when order determination is enabled
/// (`Some`); `None` selects the reverse-DFS fallback order.
#[must_use]
pub fn elimination_order(f: &Function, cfg: &Cfg, freq: Option<&Freq>) -> Vec<InstId> {
    match freq {
        Some(fr) => {
            let mut exts: Vec<(f64, usize, InstId)> = Vec::new();
            // Stable tiebreak: reverse postorder position, then index.
            for (seq, (id, inst)) in f.insts().enumerate() {
                if inst.is_extend(None) {
                    exts.push((fr.of(id.block), seq, id));
                }
            }
            exts.sort_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.1.cmp(&b.1))
            });
            exts.into_iter().map(|(_, _, id)| id).collect()
        }
        None => {
            let mut out = Vec::new();
            for &b in cfg.rpo().iter().rev() {
                let blk = f.block(b);
                for (i, inst) in blk.insts.iter().enumerate().rev() {
                    if inst.is_extend(None) {
                        out.push(InstId::new(b, i));
                    }
                }
            }
            out
        }
    }
}

/// Convenience: the static frequency estimate for a function.
#[must_use]
pub fn static_freq(_f: &Function, cfg: &Cfg) -> Freq {
    let dom = DomTree::compute(cfg);
    let loops = LoopForest::compute(cfg, &dom);
    Freq::estimate(cfg, &loops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, BlockId};

    const TWO_EXTENDS: &str = "\
func @f(i32, i32) -> i32 {
b0:
    r0 = extend.32 r0
    br b1
b1:
    r2 = const.i32 1
    r0 = sub.i32 r0, r2
    r0 = extend.32 r0
    condbr gt.i32 r0, r1, b1, b2
b2:
    ret r0
}
";

    #[test]
    fn frequency_order_puts_loop_first() {
        let f = parse_function(TWO_EXTENDS).unwrap();
        let cfg = Cfg::compute(&f);
        let fr = static_freq(&f, &cfg);
        let order = elimination_order(&f, &cfg, Some(&fr));
        assert_eq!(order.len(), 2);
        assert_eq!(order[0].block, BlockId(1), "loop extension examined first");
        assert_eq!(order[1].block, BlockId(0));
    }

    #[test]
    fn reverse_dfs_order_without_freq() {
        let f = parse_function(TWO_EXTENDS).unwrap();
        let cfg = Cfg::compute(&f);
        let order = elimination_order(&f, &cfg, None);
        assert_eq!(order.len(), 2);
        // Postorder visits b2, b1, b0: the loop extension still comes
        // before the entry one here, but for the "same frequency region"
        // cases of Figure 9 the difference is decisive (covered by the
        // integration tests).
        assert_eq!(order[0].block, BlockId(1));
        assert_eq!(order[1].block, BlockId(0));
    }

    #[test]
    fn profile_frequencies_respected() {
        let f = parse_function(TWO_EXTENDS).unwrap();
        let cfg = Cfg::compute(&f);
        // A profile claiming b0 ran more than b1 flips the order.
        let fr = Freq::from_counts(&[100, 3, 1]);
        let order = elimination_order(&f, &cfg, Some(&fr));
        assert_eq!(order[0].block, BlockId(0));
    }
}
