//! Handling of array subscripts: the paper's `AnalyzeARRAY` and
//! Theorems 1–4 (§3).
//!
//! Java rules out negative array indices (`ArrayIndexOutOfBoundsException`),
//! and both PPC64 and IA64 have 32-bit compares, so bounds checks read
//! only the low 32 bits of the index. For a subscript expression `e` the
//! predicate `LS(e) ≡ 0 <= low32(e) < length` therefore holds at every
//! executed access, and the theorems derive conditions under which the
//! *full* register provably equals that checked low-32 value — making the
//! explicit extension before the effective-address computation redundant:
//!
//! * **Theorem 1**: upper 32 bits of `i` are zero (e.g. an IA64
//!   zero-extending load) — with `LS(i)`, `i` is a small non-negative
//!   value, already extended.
//! * **Theorem 2**: `i + j` with both operands extended and one of them
//!   in `[0, 0x7fffffff]`.
//! * **Theorem 3**: `i - j` with `i` upper-zero and `j` in
//!   `[0, 0x7fffffff]`.
//! * **Theorem 4**: `i + j` with both extended and one of them in
//!   `[(maxlen-1) - 0x7fffffff, 0x7fffffff]`; with the Java maximum array
//!   size this is `[-1, 0x7fffffff]`, covering count-down loops (`i - 1`).

use sxe_analysis::{DefId, DefSite, Interval};
use sxe_ir::{BinOp, Inst, InstId, Reg, Ty};

use crate::eliminate::Analysis;

const I32_MAX: i64 = 0x7fff_ffff;

impl Analysis<'_> {
    /// The paper's `AnalyzeARRAY`: returns `true` when the extension is
    /// still *required* for the effective-address computation of the
    /// access, `false` when some theorem discharges it.
    ///
    /// The theorems are checked "for all the instructions that define the
    /// source operand of the given sign extension": the `access` and
    /// `index` arguments identify the use site (reached directly or
    /// through value-preserving copies, so the index value equals the
    /// extension's source value).
    pub(crate) fn analyze_array(&mut self, access: InstId, index: Reg) -> bool {
        let defs = self.udu.defs_reaching(access, index);
        if defs.is_empty() {
            return true;
        }
        // All reaching definitions must satisfy some theorem. Note the
        // definitions here are those of the *index use at the access*,
        // which — because `AnalyzeUSE` only forwards array analysis
        // through value-preserving moves — include the extension under
        // analysis itself; its own `theorem_ok` looks through to its
        // source's definitions.
        !defs.iter().all(|&d| self.theorem_ok(d))
    }

    /// Whether the value produced by definition `d` provably needs no
    /// extension when used as a (bounds-checked) array subscript.
    pub(crate) fn theorem_ok(&mut self, d: DefId) -> bool {
        if let Some(&ok) = self.arr_memo.get(&d) {
            return ok;
        }
        if !self.arr_progress.insert(d) {
            // A cycle must not justify itself (see eliminate.rs).
            return false;
        }
        let ok = self.theorem_ok_inner(d);
        self.arr_progress.remove(&d);
        self.arr_memo.insert(d, ok);
        ok
    }

    fn theorem_ok_inner(&mut self, d: DefId) -> bool {
        // The extension being eliminated must not justify itself: look
        // through it to its source's definitions.
        if let DefSite::Inst(id) = self.udu.site(d) {
            if Some(id) == self.under_ext {
                if let Inst::Extend { src, .. } = *self.f.inst(id) {
                    return self.operand_theorem_ok(id, src);
                }
            }
        }
        // Theorem 1 and the trivial case: a sign-extended or upper-zero
        // value combined with LS (the bounds check) is safe.
        let facts = self.def_facts_rec(d);
        if facts.sign_extended || facts.upper_zero {
            return true;
        }
        let id = match self.udu.site(d) {
            DefSite::Param(_) => return false, // facts already said no
            DefSite::Inst(id) => id,
        };
        match *self.f.inst(id) {
            // Value-preserving move: every definition of the moved value
            // must be theorem-safe.
            Inst::Copy { src, .. } => self.operand_theorem_ok(id, src),
            Inst::Bin { op: BinOp::Add, ty, lhs, rhs, .. } if ty != Ty::F64 => {
                self.theorem_2_4_add(id, lhs, rhs)
            }
            Inst::Bin { op: BinOp::Sub, ty, lhs, rhs, .. } if ty != Ty::F64 => {
                self.theorem_3_sub(id, lhs, rhs) || self.theorem_2_4_sub(id, lhs, rhs)
            }
            _ => false,
        }
    }

    fn operand_theorem_ok(&mut self, id: InstId, r: Reg) -> bool {
        let defs = self.udu.defs_reaching(id, r);
        !defs.is_empty() && defs.iter().all(|&d| self.theorem_ok(d))
    }

    fn operand_extended(&mut self, id: InstId, r: Reg) -> bool {
        self.operand_facts(id, r).sign_extended
    }

    fn operand_upper_zero(&mut self, id: InstId, r: Reg) -> bool {
        self.operand_facts(id, r).upper_zero
    }

    /// Theorems 2 and 4 for `i + j`: both operands sign-extended, and one
    /// of them within `[(maxlen-1) - 0x7fffffff, 0x7fffffff]` (which is
    /// `[0, 0x7fffffff]` for Theorem 2 and widens as the guaranteed
    /// maximum array length shrinks).
    fn theorem_2_4_add(&mut self, id: InstId, lhs: Reg, rhs: Reg) -> bool {
        if !self.operand_extended(id, lhs) || !self.operand_extended(id, rhs) {
            return false;
        }
        let lo_bound = (self.max_array_len as i64 - 1) - I32_MAX;
        let rl = self.range_at(id, lhs);
        let rr = self.range_at(id, rhs);
        rl.within(lo_bound, I32_MAX) || rr.within(lo_bound, I32_MAX)
    }

    /// Theorem 3 for `i - j`: `i` upper-zero (e.g. an IA64 load) and
    /// `0 <= j <= 0x7fffffff` with `j` extended.
    fn theorem_3_sub(&mut self, id: InstId, lhs: Reg, rhs: Reg) -> bool {
        self.operand_upper_zero(id, lhs)
            && self.operand_extended(id, rhs)
            && self.range_at(id, rhs).within(0, I32_MAX)
    }

    /// Theorems 2/4 applied to `i - j` "by computing the range of k,
    /// which can be computed by assigning (-k) to j": both operands
    /// extended, and either `i` within the Theorem 4 window or `-j`
    /// within it.
    fn theorem_2_4_sub(&mut self, id: InstId, lhs: Reg, rhs: Reg) -> bool {
        if !self.operand_extended(id, lhs) || !self.operand_extended(id, rhs) {
            return false;
        }
        let lo_bound = (self.max_array_len as i64 - 1) - I32_MAX;
        let rl = self.range_at(id, lhs);
        let rr = self.range_at(id, rhs);
        let neg_rr = Interval { lo: -rr.hi, hi: -rr.lo };
        rl.within(lo_bound, I32_MAX) || neg_rr.within(lo_bound, I32_MAX)
    }
}

#[cfg(test)]
mod tests {
    use sxe_analysis::UdDu;
    use sxe_ir::{parse_function, Cfg, Function, Target};

    use crate::eliminate::{remove_dummies, run_elimination, ElimConfig, ElimResult};

    fn eliminate(src: &str, max_array_len: u32) -> (Function, ElimResult) {
        let mut f = parse_function(src).unwrap();
        crate::insertion::insert_dummies(&mut f, Target::Ia64);
        let cfg = Cfg::compute(&f);
        let mut udu = UdDu::compute(&f, &cfg);
        let fr = crate::order::static_freq(&f, &cfg);
        let order = crate::order::elimination_order(&f, &cfg, Some(&fr));
        let config =
            ElimConfig { target: Target::Ia64, array_analysis: true, max_array_len };
        let flow = sxe_analysis::FlowRanges::compute(&f, &cfg);
        let res = run_elimination(&mut f, &mut udu, &order, &config, &flow);
        remove_dummies(&mut f, &mut udu);
        f.compact();
        (f, res)
    }

    const JAVA_MAX: u32 = 0x7fff_ffff;

    #[test]
    fn theorem_1_upper_zero_load() {
        // The index comes from an IA64 32-bit load (upper-zero): its
        // extension before the access is unnecessary.
        let (f, res) = eliminate(
            "func @f(i32, i32) -> i32 {\n\
             b0:\n    r2 = newarray.i32 r0\n    r3 = aload.i32 r2, r1\n    r3 = extend.32 r3\n    r4 = aload.i32 r2, r3\n    ret r4\n}\n",
            JAVA_MAX,
        );
        assert_eq!(res.eliminated, 1);
        assert_eq!(res.via_array, 1);
        assert_eq!(f.count_extends(None), 0);
    }

    #[test]
    fn theorem_2_sum_of_nonneg() {
        // k = i + j with j = x & 0xff (non-negative, extended) and i a
        // parameter (extended): Theorem 2.
        let (f, res) = eliminate(
            "func @f(i32, i32, i32) -> i32 {\n\
             b0:\n    r3 = newarray.i32 r0\n    r4 = const.i32 255\n    r5 = and.i32 r1, r4\n    r6 = add.i32 r2, r5\n    r6 = extend.32 r6\n    r7 = aload.i32 r3, r6\n    ret r7\n}\n",
            JAVA_MAX,
        );
        assert_eq!(res.eliminated, 1);
        assert_eq!(f.count_extends(None), 0);
    }

    #[test]
    fn theorem_2_fails_without_nonneg_side() {
        // i + j with both operands of unknown sign: no theorem applies.
        let (f, res) = eliminate(
            "func @f(i32, i32, i32) -> i32 {\n\
             b0:\n    r3 = newarray.i32 r0\n    r4 = add.i32 r1, r2\n    r4 = extend.32 r4\n    r5 = aload.i32 r3, r4\n    ret r5\n}\n",
            JAVA_MAX,
        );
        assert_eq!(res.eliminated, 0);
        assert_eq!(f.count_extends(None), 1);
    }

    #[test]
    fn theorem_4_countdown() {
        // i = i - 1 in a loop: the subtraction is i + (-1) with -1 in
        // [-1, 0x7fffffff] — Theorem 4 with the Java maximum length.
        let (f, res) = eliminate(
            "func @f(i32, i32) -> i32 {\n\
             b0:\n    r2 = newarray.i32 r0\n    r5 = const.i32 0\n    br b1\n\
             b1:\n    r3 = const.i32 1\n    r1 = sub.i32 r1, r3\n    r1 = extend.32 r1\n    r4 = aload.i32 r2, r1\n    r5 = add.i32 r5, r4\n    condbr gt.i32 r1, r3, b1, b2\n\
             b2:\n    r5 = extend.32 r5\n    ret r5\n}\n",
            JAVA_MAX,
        );
        assert_eq!(res.via_array, 1);
        assert_eq!(
            f.block(sxe_ir::BlockId(1))
                .insts
                .iter()
                .filter(|i| i.is_extend(None))
                .count(),
            0,
            "the loop index extension is gone"
        );
    }

    #[test]
    fn theorem_4_window_depends_on_max_len() {
        // Figure 10: i = i - 2 is eliminable only when the maximum array
        // size is known to be < 0x7fffffff (here: lowered so the window
        // includes -2).
        let src = "func @f(i32, i32) -> i32 {\n\
             b0:\n    r2 = newarray.i32 r0\n    br b1\n\
             b1:\n    r3 = const.i32 2\n    r1 = sub.i32 r1, r3\n    r1 = extend.32 r1\n    r4 = aload.i32 r2, r1\n    condbr gt.i32 r1, r3, b1, b2\n\
             b2:\n    ret r4\n}\n";
        // With the Java maximum (0x7fffffff) the window is [-1, ...]:
        // -2 is outside, the extension stays.
        let (f1, res1) = eliminate(src, JAVA_MAX);
        assert_eq!(res1.eliminated, 0);
        assert_eq!(f1.count_extends(None), 1);
        // With maxlen 0x7fff0001 the window is [-65535+...,-...]: wide
        // enough for -2: eliminated (the paper's §3 example).
        let (f2, res2) = eliminate(src, 0x7fff_0001);
        assert_eq!(res2.eliminated, 1);
        assert_eq!(f2.count_extends(None), 0);
    }

    #[test]
    fn theorem_3_load_minus_positive() {
        // i (upper-zero IA64 load) - j (masked non-negative): Theorem 3.
        let (f, res) = eliminate(
            "func @f(i32, i32) -> i32 {\n\
             b0:\n    r2 = newarray.i32 r0\n    r3 = aload.i32 r2, r1\n    r4 = const.i32 1023\n    r5 = and.i32 r1, r4\n    r6 = sub.i32 r3, r5\n    r6 = extend.32 r6\n    r7 = aload.i32 r2, r6\n    ret r7\n}\n",
            JAVA_MAX,
        );
        assert_eq!(res.eliminated, 1);
        assert_eq!(f.count_extends(None), 0);
    }

    #[test]
    fn sub_of_two_params_not_eliminable() {
        let (f, res) = eliminate(
            "func @f(i32, i32, i32) -> i32 {\n\
             b0:\n    r3 = newarray.i32 r0\n    r4 = sub.i32 r1, r2\n    r4 = extend.32 r4\n    r5 = aload.i32 r3, r4\n    ret r5\n}\n",
            JAVA_MAX,
        );
        assert_eq!(res.eliminated, 0);
        let _ = f;
    }

    #[test]
    fn theorem_2_sub_with_bounded_negated_rhs() {
        // i - j where j in [0, 255]: -j in [-255, 0] — needs maxlen
        // lowered enough to include -255 in the window.
        let src = "func @f(i32, i32, i32) -> i32 {\n\
             b0:\n    r3 = newarray.i32 r0\n    r4 = const.i32 255\n    r5 = and.i32 r2, r4\n    r6 = sub.i32 r1, r5\n    r6 = extend.32 r6\n    r7 = aload.i32 r3, r6\n    ret r7\n}\n";
        let (_, res1) = eliminate(src, JAVA_MAX);
        // Window [-1, ...] does not include -255, but the LHS (a
        // parameter) has unknown range, so only the negated-rhs check
        // could fire — and it cannot.
        assert_eq!(res1.eliminated, 0);
        let (_, res2) = eliminate(src, 0x7fff_0001 - 1);
        // Window now reaches -65536 + ... — wide enough for -255.
        assert_eq!(res2.eliminated, 1);
    }
}
