//! The VM execution API: [`VmBuilder`] → [`Vm`], mirroring the compile
//! pipeline's `CompilerBuilder` → `Compiler` surface.
//!
//! A [`Vm`] owns one engine instance over one module:
//!
//! * [`Engine::Decoded`] (the default) pre-decodes the module once into
//!   dense op arrays and executes with the tight dispatch loop of
//!   [`crate::exec`] — the fast path every harness should use;
//! * [`Engine::Tree`] walks the `Inst` tree via the reference
//!   [`Machine`] — the executable specification the decoded engine is
//!   differentially tested against.
//!
//! Both engines are observably identical: outcome, trap kind, heap
//! checksum, dynamic [`Counters`], and block profiles.
//!
//! Errors are typed ([`VmError`], `#[non_exhaustive]`): an unknown entry
//! function or an arity mismatch is a caller error reported as a value,
//! not a panic; machine faults surface as [`VmError::Trap`].

use sxe_ir::{FuncId, Module, Target, TrapKind};

use crate::counters::{Counters, FlatCounters};
use crate::decode::{decode_module, DecodedModule};
use crate::error::Trap;
use crate::exec::{run_decoded, ExecState};
use crate::heap::Heap;
use crate::machine::{BlockHook, Machine, Outcome, DEFAULT_FUEL};

/// Which engine executes the module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Engine {
    /// Pre-decoded op arrays with a tight dispatch loop and fused
    /// superinstructions (the fast path, and the default).
    #[default]
    Decoded,
    /// The tree-walking reference interpreter ([`Machine`]).
    Tree,
    /// x86-64 native code compiled by `sxe-native`, with per-function
    /// fallback to the decoded engine for anything the code generator
    /// refuses (see [`Vm::native_refusals`]). Observably identical to
    /// the interpreters except that fuel exhaustion is detected at
    /// basic-block granularity.
    Native,
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Engine::Decoded => "decoded",
            Engine::Tree => "tree",
            Engine::Native => "native",
        })
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Engine, String> {
        match s {
            "decoded" => Ok(Engine::Decoded),
            "tree" => Ok(Engine::Tree),
            "native" => Ok(Engine::Native),
            other => Err(format!(
                "unknown engine `{other}` (expected `decoded`, `tree`, or `native`)"
            )),
        }
    }
}

/// A typed execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmError {
    /// No function with the requested name exists in the module.
    UnknownFunction {
        /// The name that failed to resolve.
        name: String,
    },
    /// The argument count does not match the function's parameter list.
    ArityMismatch {
        /// Function being called.
        function: String,
        /// Its declared parameter count.
        expected: usize,
        /// Arguments actually supplied.
        got: usize,
    },
    /// The machine trapped while executing.
    Trap(Trap),
}

impl VmError {
    /// The underlying [`Trap`], if this error is a machine fault.
    #[must_use]
    pub fn trap(&self) -> Option<&Trap> {
        match self {
            VmError::Trap(t) => Some(t),
            _ => None,
        }
    }

    /// The [`TrapKind`], if this error is a machine fault.
    #[must_use]
    pub fn trap_kind(&self) -> Option<TrapKind> {
        self.trap().map(|t| t.kind)
    }
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::UnknownFunction { name } => write!(f, "no function named `{name}`"),
            VmError::ArityMismatch { function, expected, got } => write!(
                f,
                "arity mismatch calling @{function}: expected {expected} arguments, got {got}"
            ),
            VmError::Trap(t) => t.fmt(f),
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::Trap(t) => Some(t),
            _ => None,
        }
    }
}

impl From<Trap> for VmError {
    fn from(t: Trap) -> VmError {
        VmError::Trap(t)
    }
}

/// Builder for a [`Vm`]. Consuming-`self` setters, like
/// `CompilerBuilder`.
///
/// ```
/// use sxe_ir::{parse_module, Target};
/// use sxe_vm::{Engine, Vm};
///
/// let m = parse_module("func @f(i32) -> i32 {\nb0:\n    ret r0\n}\n")?;
/// let mut vm = Vm::builder(&m).target(Target::Ia64).engine(Engine::Tree).fuel(1_000).build();
/// assert_eq!(vm.run("f", &[7])?.ret, Some(7));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub struct VmBuilder<'m> {
    module: &'m Module,
    target: Target,
    engine: Engine,
    fuel: u64,
    profile: bool,
    hook: Option<BlockHook>,
}

impl std::fmt::Debug for VmBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VmBuilder")
            .field("target", &self.target)
            .field("engine", &self.engine)
            .field("fuel", &self.fuel)
            .field("profile", &self.profile)
            .finish_non_exhaustive()
    }
}

impl<'m> VmBuilder<'m> {
    /// Start a builder over `module` with the default target, the
    /// decoded engine, and [`DEFAULT_FUEL`].
    pub fn new(module: &'m Module) -> VmBuilder<'m> {
        VmBuilder {
            module,
            target: Target::default(),
            engine: Engine::default(),
            fuel: DEFAULT_FUEL,
            profile: false,
            hook: None,
        }
    }

    /// Select the execution target (load-extension behaviour).
    pub fn target(mut self, target: Target) -> VmBuilder<'m> {
        self.target = target;
        self
    }

    /// Select the engine.
    pub fn engine(mut self, engine: Engine) -> VmBuilder<'m> {
        self.engine = engine;
        self
    }

    /// Set the instruction budget refilled by [`Vm::reset`].
    pub fn fuel(mut self, fuel: u64) -> VmBuilder<'m> {
        self.fuel = fuel;
        self
    }

    /// Collect block-level execution profiles (the paper's
    /// interpreter-collected branch statistics; read back with
    /// [`Vm::profile_counts`]).
    pub fn profile(mut self, on: bool) -> VmBuilder<'m> {
        self.profile = on;
        self
    }

    /// Install a callback invoked at every basic-block entry with the
    /// current register file (before any instruction of the block runs).
    pub fn block_hook(mut self, hook: BlockHook) -> VmBuilder<'m> {
        self.hook = Some(hook);
        self
    }

    /// Build the VM. For [`Engine::Decoded`] this runs the pre-decoding
    /// pass over every function now.
    pub fn build(self) -> Vm<'m> {
        let profile_vecs = || {
            self.module
                .functions
                .iter()
                .map(|f| vec![0u64; f.blocks.len()])
                .collect::<Vec<_>>()
        };
        let inner = match self.engine {
            Engine::Tree => {
                let mut m = Machine::new(self.module, self.target);
                m.set_fuel(self.fuel);
                if self.profile {
                    m.enable_profile();
                }
                if let Some(h) = self.hook {
                    m.set_block_hook(h);
                }
                Inner::Tree(m)
            }
            Engine::Decoded | Engine::Native => {
                let hooked = self.hook.is_some();
                let dec = DecodedState {
                    dm: decode_module(self.module),
                    st: ExecState {
                        heap: Heap::new(),
                        fuel: self.fuel,
                        flat: FlatCounters::default(),
                        profile: self.profile.then(profile_vecs),
                        hook: self.hook,
                        target: self.target,
                    },
                    counters: Counters::new(),
                };
                if self.engine == Engine::Decoded {
                    Inner::Decoded(dec)
                } else {
                    // Block hooks need per-block register snapshots the
                    // generated code does not produce: fall back whole.
                    // MIPS64's canonical-form invariant (every 32-bit ALU
                    // result sign-extended in its register) is not emitted
                    // by the x86-64 backend, which computes the raw
                    // machine-model bits; running it would silently produce
                    // non-canonical values, so refuse and fall back.
                    let (nm, disabled) = if hooked {
                        (
                            None,
                            Some(
                                "a block hook is installed; native execution is disabled"
                                    .to_string(),
                            ),
                        )
                    } else if self.target == Target::Mips64 {
                        (
                            None,
                            Some(
                                "target mips64 requires canonical-form (sign-extended) \
                                 32-bit results the native backend does not emit; \
                                 native execution is disabled"
                                    .to_string(),
                            ),
                        )
                    } else {
                        match sxe_native::compile(
                            self.module,
                            crate::native_engine::helpers(),
                            crate::native_engine::accounting(),
                            &sxe_native::CompileOpts::default(),
                        ) {
                            Ok(nm) => (Some(nm), None),
                            Err(why) => (None, Some(why)),
                        }
                    };
                    Inner::Native(NativeState { dec, nm, disabled })
                }
            }
        };
        Vm { module: self.module, fuel_tank: self.fuel, profile: self.profile, inner }
    }
}

struct DecodedState {
    dm: DecodedModule,
    st: ExecState,
    /// [`ExecState::flat`] folded into ordinary counters after the most
    /// recent run (so [`Vm::counters`] can hand out a reference).
    counters: Counters,
}

impl DecodedState {
    /// The decoded engine's call path, shared verbatim by
    /// [`Engine::Decoded`] and [`Engine::Native`]'s fallback.
    fn call(&mut self, func: FuncId, args: &[i64]) -> Result<Outcome, VmError> {
        let canon = self.canonical_args(func, args);
        let res = run_decoded(&self.dm, &mut self.st, func.index(), &canon);
        // Fold counters even when the run trapped — partial
        // executions count, exactly like the tree engine.
        self.counters = self.st.flat.materialize();
        match res {
            Ok(ret) => Ok(Outcome { ret, heap_checksum: self.st.heap.checksum() }),
            Err(t) => Err(VmError::Trap(t)),
        }
    }

    /// Entry-boundary canonicalization: sign-extend narrow arguments,
    /// the calling convention's invariant.
    fn canonical_args(&self, func: FuncId, args: &[i64]) -> Vec<i64> {
        args.iter()
            .zip(&self.dm.funcs[func.index()].params)
            .map(|(&v, &(_, w))| match w {
                Some(w) => w.sign_extend(v),
                None => v,
            })
            .collect()
    }
}

struct NativeState {
    /// Full decoded engine: the per-function fallback path, and the
    /// owner of all observable state (heap, fuel, counters, profiles)
    /// that native runs fold into.
    dec: DecodedState,
    /// The compiled module; `None` when native execution is disabled
    /// wholesale (unsupported host, or a block hook is installed).
    nm: Option<sxe_native::NativeModule>,
    /// Why `nm` is `None`.
    disabled: Option<String>,
}

impl NativeState {
    /// Run `func` natively. Must only be called when
    /// `nm.is_native(func)`.
    fn call_native(
        &mut self,
        module: &Module,
        func: FuncId,
        args: &[i64],
    ) -> Result<Outcome, VmError> {
        let nm = self.nm.as_ref().expect("caller checked is_native");
        let d = &mut self.dec;
        let canon = d.canonical_args(func, args);
        let mut ctx = sxe_native::NativeCtx {
            trap_kind: sxe_native::TRAP_NONE,
            trap_site: 0,
            fuel: d.st.fuel,
            depth: 0,
            user: std::ptr::from_mut(&mut d.st.heap).cast(),
            target: crate::native_engine::target_code(d.st.target),
            _pad: 0,
        };
        let raw_ret = nm.run(func.index(), &canon, &mut ctx);
        // Reconstruct exact counters: Σ segment-count × histogram, then
        // fold the block-entry counts into the profile and zero the
        // segment array for the next run.
        let mut tally = nm.tally();
        if let Some(p) = d.st.profile.as_mut() {
            for (fi, per_block) in p.iter_mut().enumerate() {
                if let Some(bc) = nm.block_counts(fi) {
                    for (slot, c) in per_block.iter_mut().zip(bc) {
                        *slot += c;
                    }
                }
            }
        }
        nm.reset_counts();
        let mut fuel = ctx.fuel;
        let res = match sxe_native::code_trap(ctx.trap_kind) {
            None => {
                let ret = module.function(func).ret.is_some().then_some(raw_ret);
                Ok(Outcome { ret, heap_checksum: d.st.heap.checksum() })
            }
            Some(kind) => {
                // A trap mid-segment over-charged by the instructions
                // after the faulting one: subtract the site's suffix and
                // refund the same number of fuel units, restoring the
                // interpreters' exact per-instruction accounting.
                let site = nm.site(ctx.trap_site);
                tally.subtract(&site.suffix);
                fuel += site.suffix.insts;
                let func = FuncId(site.func);
                Err(VmError::Trap(Trap {
                    kind,
                    func,
                    func_name: module.function(func).name.clone(),
                    at: site.at,
                }))
            }
        };
        d.st.fuel = fuel;
        d.st.flat.insts += tally.insts;
        d.st.flat.cycles += tally.cycles;
        for (a, b) in d.st.flat.extends.iter_mut().zip(tally.extends) {
            *a += b;
        }
        for (a, b) in d.st.flat.per_op.iter_mut().zip(tally.per_op) {
            *a += b;
        }
        d.counters = d.st.flat.materialize();
        res
    }
}

enum Inner<'m> {
    Tree(Machine<'m>),
    Decoded(DecodedState),
    Native(NativeState),
}

/// A virtual machine over one module; build with [`Vm::builder`].
pub struct Vm<'m> {
    module: &'m Module,
    fuel_tank: u64,
    profile: bool,
    inner: Inner<'m>,
}

impl std::fmt::Debug for Vm<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("engine", &self.engine())
            .field("fuel_tank", &self.fuel_tank)
            .field("profile", &self.profile)
            .finish_non_exhaustive()
    }
}

impl<'m> Vm<'m> {
    /// Shorthand: the default (decoded) engine on `target` with
    /// [`DEFAULT_FUEL`].
    #[must_use]
    pub fn new(module: &'m Module, target: Target) -> Vm<'m> {
        Vm::builder(module).target(target).build()
    }

    /// Start building a VM over `module`.
    pub fn builder(module: &'m Module) -> VmBuilder<'m> {
        VmBuilder::new(module)
    }

    /// The engine this VM runs on.
    #[must_use]
    pub fn engine(&self) -> Engine {
        match self.inner {
            Inner::Tree(_) => Engine::Tree,
            Inner::Decoded(_) => Engine::Decoded,
            Inner::Native(_) => Engine::Native,
        }
    }

    /// On [`Engine::Native`]: every function that fell back to the
    /// decoded engine, as `(function name, reason)` pairs. Empty on
    /// fully-native modules and on the other engines.
    #[must_use]
    pub fn native_refusals(&self) -> Vec<(String, String)> {
        let Inner::Native(n) = &self.inner else {
            return Vec::new();
        };
        match (&n.nm, &n.disabled) {
            (Some(nm), _) => self
                .module
                .functions
                .iter()
                .enumerate()
                .filter_map(|(i, f)| nm.refusal(i).map(|r| (f.name.clone(), r.to_string())))
                .collect(),
            (None, Some(why)) => self
                .module
                .functions
                .iter()
                .map(|f| (f.name.clone(), why.clone()))
                .collect(),
            (None, None) => Vec::new(),
        }
    }

    /// On [`Engine::Native`]: per natively-compiled function, the
    /// machine-code size and the bytes of it attributable to `Extend`
    /// instructions — the wall-clock experiment's "eliminated `movsxd`
    /// bytes" metric. `(name, code_bytes, extend_bytes)` tuples; empty
    /// on other engines.
    #[must_use]
    pub fn native_code_stats(&self) -> Vec<(String, usize, usize)> {
        let Inner::Native(n) = &self.inner else {
            return Vec::new();
        };
        let Some(nm) = &n.nm else {
            return Vec::new();
        };
        self.module
            .functions
            .iter()
            .enumerate()
            .filter(|&(i, _)| nm.is_native(i))
            .map(|(i, f)| (f.name.clone(), nm.code_bytes(i), nm.extend_bytes(i)))
            .collect()
    }

    /// Run the function named `name`.
    ///
    /// # Errors
    /// [`VmError::UnknownFunction`] if no function has that name,
    /// [`VmError::ArityMismatch`] on a wrong argument count, or
    /// [`VmError::Trap`] on any machine fault.
    pub fn run(&mut self, name: &str, args: &[i64]) -> Result<Outcome, VmError> {
        let Some(id) = self.module.function_by_name(name) else {
            return Err(VmError::UnknownFunction { name: name.to_string() });
        };
        self.call(id, args)
    }

    /// Call `func` with raw argument values. Narrow integer arguments
    /// are canonicalized (sign-extended) at this entry boundary, the
    /// calling convention's invariant.
    ///
    /// # Errors
    /// [`VmError::ArityMismatch`] or [`VmError::Trap`].
    pub fn call(&mut self, func: FuncId, args: &[i64]) -> Result<Outcome, VmError> {
        let f = self.module.function(func);
        if args.len() != f.params.len() {
            return Err(VmError::ArityMismatch {
                function: f.name.clone(),
                expected: f.params.len(),
                got: args.len(),
            });
        }
        match &mut self.inner {
            Inner::Tree(m) => m.call(func, args).map_err(VmError::from),
            Inner::Decoded(d) => d.call(func, args),
            Inner::Native(n) => {
                if n.nm.as_ref().is_some_and(|nm| nm.is_native(func.index())) {
                    n.call_native(self.module, func, args)
                } else {
                    // Per-entry-function fallback: anything the code
                    // generator refused runs on the decoded engine,
                    // folding into the same observable state.
                    n.dec.call(func, args)
                }
            }
        }
    }

    /// Dynamic counters accumulated over all runs since the last
    /// [`Vm::reset`].
    #[must_use]
    pub fn counters(&self) -> &Counters {
        match &self.inner {
            Inner::Tree(m) => &m.counters,
            Inner::Decoded(d) => &d.counters,
            Inner::Native(n) => &n.dec.counters,
        }
    }

    /// Execution counts per block of `func` (requires
    /// [`VmBuilder::profile`]).
    #[must_use]
    pub fn profile_counts(&self, func: FuncId) -> Option<&[u64]> {
        match &self.inner {
            Inner::Tree(m) => m.profile_counts(func),
            Inner::Decoded(d) | Inner::Native(NativeState { dec: d, .. }) => {
                d.st.profile.as_ref().map(|p| p[func.index()].as_slice())
            }
        }
    }

    /// The heap (for checksums and assertions).
    #[must_use]
    pub fn heap(&self) -> &Heap {
        match &self.inner {
            Inner::Tree(m) => m.heap(),
            Inner::Decoded(d) | Inner::Native(NativeState { dec: d, .. }) => &d.st.heap,
        }
    }

    /// Remaining instruction budget.
    #[must_use]
    pub fn fuel_remaining(&self) -> u64 {
        match &self.inner {
            Inner::Tree(m) => m.fuel(),
            Inner::Decoded(d) | Inner::Native(NativeState { dec: d, .. }) => d.st.fuel,
        }
    }

    /// Discard all run state and refill the fuel tank: fresh heap,
    /// zeroed counters and profiles. The decoded module, profiling mode,
    /// and installed hooks are kept — this is what lets a harness decode
    /// once and execute many independent runs (the oracle's hot path).
    pub fn reset(&mut self) {
        match &mut self.inner {
            Inner::Tree(m) => {
                m.reset();
                m.set_fuel(self.fuel_tank);
            }
            Inner::Decoded(d) | Inner::Native(NativeState { dec: d, .. }) => {
                d.st.heap = Heap::new();
                d.st.fuel = self.fuel_tank;
                d.st.flat.clear();
                d.counters = Counters::new();
                if let Some(p) = d.st.profile.as_mut() {
                    for counts in p {
                        counts.iter_mut().for_each(|c| *c = 0);
                    }
                }
            }
        }
        if let Inner::Native(NativeState { nm: Some(nm), .. }) = &self.inner {
            nm.reset_counts();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_module, Width};

    const LOOPY: &str = "\
func @main(i32) -> i32 {
b0:
    br b1
b1:
    r1 = const.i32 1
    r0 = sub.i32 r0, r1
    r0 = extend.32 r0
    condbr gt.i32 r0, r1, b1, b2
b2:
    r2 = call @double(r0)
    ret r2
}
func @double(i32) -> i32 {
b0:
    r1 = add.i32 r0, r0
    r1 = extend.32 r1
    ret r1
}
";

    #[test]
    fn engines_agree_on_outcome_counters_and_profile() {
        let m = parse_module(LOOPY).unwrap();
        let mut outs = Vec::new();
        for engine in [Engine::Decoded, Engine::Tree, Engine::Native] {
            let mut vm = Vm::builder(&m).engine(engine).profile(true).build();
            if engine == Engine::Native {
                assert_eq!(vm.native_refusals(), Vec::new());
            }
            let out = vm.run("main", &[5]).expect("no trap");
            let main = m.function_by_name("main").unwrap();
            outs.push((
                out,
                vm.counters().clone(),
                vm.profile_counts(main).unwrap().to_vec(),
            ));
        }
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[0], outs[2]);
        assert_eq!(outs[0].0.ret, Some(2));
        // The fused back-edge still counts its components: 4 loop
        // extends + 1 in @double.
        assert_eq!(outs[0].1.extend_count(Some(Width::W32)), 5);
        assert_eq!(outs[0].2, vec![1, 4, 1]);
    }

    #[test]
    fn unknown_function_is_a_typed_error() {
        let m = parse_module(LOOPY).unwrap();
        for engine in [Engine::Decoded, Engine::Tree, Engine::Native] {
            let mut vm = Vm::builder(&m).engine(engine).build();
            let err = vm.run("nope", &[]).unwrap_err();
            assert_eq!(err, VmError::UnknownFunction { name: "nope".into() });
            assert!(err.to_string().contains("nope"));
            assert!(err.trap_kind().is_none());
        }
    }

    #[test]
    fn arity_mismatch_is_a_typed_error() {
        let m = parse_module(LOOPY).unwrap();
        let mut vm = Vm::new(&m, Target::Ia64);
        let err = vm.run("main", &[1, 2]).unwrap_err();
        assert_eq!(
            err,
            VmError::ArityMismatch { function: "main".into(), expected: 1, got: 2 }
        );
    }

    #[test]
    fn fuel_exhaustion_matches_across_engines() {
        let src = "func @f() {\nb0:\n    br b0\n}\n";
        let m = parse_module(src).unwrap();
        for engine in [Engine::Decoded, Engine::Tree] {
            let mut vm = Vm::builder(&m).engine(engine).fuel(1000).build();
            let err = vm.run("f", &[]).unwrap_err();
            assert_eq!(err.trap_kind(), Some(sxe_ir::TrapKind::ResourceExhausted));
            assert_eq!(vm.counters().insts, 1000, "{engine}");
            assert_eq!(vm.fuel_remaining(), 0);
        }
    }

    #[test]
    fn reset_refills_fuel_and_clears_state() {
        let m = parse_module(LOOPY).unwrap();
        let mut vm = Vm::builder(&m).profile(true).fuel(10_000).build();
        vm.run("main", &[5]).unwrap();
        let first = (vm.counters().clone(), vm.fuel_remaining());
        vm.reset();
        assert_eq!(vm.counters().insts, 0);
        assert_eq!(vm.fuel_remaining(), 10_000);
        let main = m.function_by_name("main").unwrap();
        assert!(vm.profile_counts(main).unwrap().iter().all(|&c| c == 0));
        vm.run("main", &[5]).unwrap();
        assert_eq!((vm.counters().clone(), vm.fuel_remaining()), first);
    }

    #[test]
    fn block_hooks_fire_on_the_decoded_engine() {
        let m = parse_module(LOOPY).unwrap();
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let log = std::rc::Rc::clone(&seen);
        let mut vm = Vm::builder(&m)
            .block_hook(Box::new(move |f, b, regs| {
                log.borrow_mut().push((f.0, b.0, regs[0]));
            }))
            .build();
        vm.run("main", &[2]).unwrap();
        let seen = seen.borrow();
        // main b0, main b1 (r0 = 2 on entry), main b2, double b0.
        assert_eq!(seen[0], (0, 0, 2));
        assert_eq!(seen[1], (0, 1, 2));
        assert!(seen.iter().any(|&(f, _, _)| f == 1));
    }

    #[test]
    fn narrow_args_are_canonicalized_on_both_engines() {
        let src = "func @f(i32) -> f64 {\nb0:\n    r1 = i32tof64.f64 r0\n    ret r1\n}\n";
        let m = parse_module(src).unwrap();
        for engine in [Engine::Decoded, Engine::Tree, Engine::Native] {
            let mut vm = Vm::builder(&m).engine(engine).build();
            let out = vm.run("f", &[0xFFFF_FFFF]).unwrap(); // -1 unextended
            assert_eq!(f64::from_bits(out.ret.unwrap() as u64), -1.0, "{engine}");
        }
    }

    #[test]
    fn native_fuel_exhaustion_is_block_granular() {
        let src = "func @f() {\nb0:\n    br b0\n}\n";
        let m = parse_module(src).unwrap();
        let mut vm = Vm::builder(&m).engine(Engine::Native).fuel(1000).build();
        assert!(vm.native_refusals().is_empty());
        let err = vm.run("f", &[]).unwrap_err();
        assert_eq!(err.trap_kind(), Some(sxe_ir::TrapKind::ResourceExhausted));
        assert_eq!(vm.fuel_remaining(), 0);
        // The cutoff is per accounting segment, so the counters may
        // overshoot the budget by up to one segment (here: one `br`).
        assert!(vm.counters().insts >= 1000 && vm.counters().insts <= 1001);
    }

    #[test]
    fn native_reset_clears_jit_tallies_too() {
        let m = parse_module(LOOPY).unwrap();
        let mut vm =
            Vm::builder(&m).engine(Engine::Native).profile(true).fuel(10_000).build();
        vm.run("main", &[5]).unwrap();
        let first = (vm.counters().clone(), vm.fuel_remaining());
        vm.reset();
        assert_eq!(vm.counters().insts, 0);
        assert_eq!(vm.fuel_remaining(), 10_000);
        vm.run("main", &[5]).unwrap();
        assert_eq!((vm.counters().clone(), vm.fuel_remaining()), first);
    }

    #[test]
    fn block_hook_disables_native_compilation() {
        let m = parse_module(LOOPY).unwrap();
        let mut vm = Vm::builder(&m)
            .engine(Engine::Native)
            .block_hook(Box::new(|_, _, _| {}))
            .build();
        let refusals = vm.native_refusals();
        assert_eq!(refusals.len(), m.functions.len());
        assert!(refusals[0].1.contains("hook"));
        // Everything still runs correctly on the decoded fallback.
        assert_eq!(vm.run("main", &[5]).unwrap().ret, Some(2));
    }

    #[test]
    fn mips64_refuses_native_compilation_with_typed_reason() {
        let m = parse_module(LOOPY).unwrap();
        let mut vm =
            Vm::builder(&m).engine(Engine::Native).target(Target::Mips64).build();
        let refusals = vm.native_refusals();
        assert_eq!(refusals.len(), m.functions.len());
        assert!(refusals[0].1.contains("mips64"), "{}", refusals[0].1);
        // The decoded fallback runs with full MIPS64 semantics and
        // matches the other engines.
        let want = Vm::builder(&m)
            .engine(Engine::Decoded)
            .target(Target::Mips64)
            .build()
            .run("main", &[5])
            .unwrap();
        assert_eq!(vm.run("main", &[5]).unwrap(), want);
        // The other targets still compile natively.
        for t in [Target::Ia64, Target::Ppc64] {
            let mut vm = Vm::builder(&m).engine(Engine::Native).target(t).build();
            assert!(vm.native_refusals().is_empty(), "{t}");
            assert_eq!(vm.run("main", &[5]).unwrap().ret, Some(2));
        }
    }

    #[test]
    fn native_code_stats_report_extend_bytes() {
        let m = parse_module(LOOPY).unwrap();
        let vm = Vm::builder(&m).engine(Engine::Native).build();
        let stats = vm.native_code_stats();
        assert_eq!(stats.len(), 2);
        let main = stats.iter().find(|s| s.0 == "main").unwrap();
        assert!(main.1 > 0, "code bytes");
        assert!(main.2 > 0, "LOOPY's @main keeps an extend, so bytes > 0");
        assert!(main.2 < main.1);
    }

    #[test]
    fn engine_parses_and_displays() {
        assert_eq!("decoded".parse::<Engine>(), Ok(Engine::Decoded));
        assert_eq!("tree".parse::<Engine>(), Ok(Engine::Tree));
        assert_eq!("native".parse::<Engine>(), Ok(Engine::Native));
        assert!("fast".parse::<Engine>().is_err());
        assert_eq!(Engine::Decoded.to_string(), "decoded");
        assert_eq!(Engine::Native.to_string(), "native");
        assert_eq!(Engine::default(), Engine::Decoded);
    }
}
