//! Pre-decoding: lower a [`Module`] once into dense, cache-friendly op
//! arrays the decoded engine ([`crate::exec`]) dispatches over.
//!
//! The tree-walking reference engine ([`crate::Machine`]) re-interprets
//! the `Inst` tree on every execution: per instruction it skips `nop`
//! tombstones, matches an enum whose variants carry `Reg` wrappers and a
//! `Vec` of call arguments, computes the cost model, and records
//! counters through a `BTreeMap` keyed by mnemonic. Pre-decoding hoists
//! all of that to a one-time pass per module:
//!
//! * every block's live instructions are flattened into one [`Op`]
//!   vector per function (`nop` tombstones are not emitted at all);
//! * register numbers, constants, and call targets become flat `u32`s /
//!   inline `i64`s — no wrapper types, no heap indirection (call
//!   argument registers live in a per-function side pool);
//! * branch targets are resolved from [`BlockId`]s to op-array offsets
//!   (`pc`s) at decode time, so taken branches are a single assignment
//!   (the originating block id rides along for profiling and hooks);
//! * the hot instruction pairs the paper's workloads actually execute
//!   are fused into superinstructions: define+extend ([`Op::BinExt`],
//!   [`Op::SetccExt`]), load+extend ([`Op::LoadExt`]), and the canonical
//!   loop back-edge define+extend+compare-and-branch ([`Op::BinExtBr`]).
//!   (Compare+branch itself is already a fused instruction in this IR:
//!   [`Inst::CondBr`].)
//!
//! Fusion never changes observable behaviour: the executor charges fuel
//! and records counters per fused *component*, in the same order the
//! tree engine would, so outcomes, trap kinds, heap checksums, and
//! dynamic counters stay bit-identical (the invariant the
//! `vm_identity` suite pins). A parallel cold array of [`InstId`]s maps
//! every op back to the source position of its first component for trap
//! reporting.

use sxe_ir::{BinOp, BlockId, Cond, Function, Inst, InstId, Module, Ty, UnOp, Width};

use crate::cost::{bin_cost, un_cost, ALU_COST, BRANCH_COST};

/// Sentinel register index meaning "absent" (no destination / no return
/// value).
pub(crate) const NO_REG: u32 = u32::MAX;

/// One pre-decoded operation. All operands are resolved: register
/// numbers are flat `u32` indices into the frame, branch targets are op
/// offsets, constants are inline.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    Const { dst: u32, value: i64 },
    ConstF { dst: u32, bits: i64 },
    Copy { dst: u32, src: u32 },
    Un { op: UnOp, ty: Ty, dst: u32, src: u32 },
    Bin { op: BinOp, ty: Ty, dst: u32, lhs: u32, rhs: u32 },
    Setcc { cond: Cond, ty: Ty, dst: u32, lhs: u32, rhs: u32 },
    Extend { dst: u32, src: u32, from: Width },
    JustExt { dst: u32, src: u32 },
    NewArray { dst: u32, len: u32, elem: Ty },
    ArrayLen { dst: u32, array: u32 },
    Load { dst: u32, array: u32, index: u32 },
    Store { array: u32, index: u32, src: u32 },
    Call { dst: u32, callee: u32, args_at: u32, args_len: u32 },
    Br { pc: u32, block: u32 },
    CondBr {
        cond: Cond,
        ty: Ty,
        lhs: u32,
        rhs: u32,
        then_pc: u32,
        then_block: u32,
        else_pc: u32,
        else_block: u32,
    },
    Ret { src: u32 },
    /// Superinstruction: non-trapping integer `Bin` + `Extend` of its
    /// result. Both destinations are written (the unextended value stays
    /// observable in `dst`).
    BinExt { op: BinOp, ty: Ty, dst: u32, lhs: u32, rhs: u32, ext_dst: u32, from: Width },
    /// Superinstruction: `Setcc` + `Extend` of its result.
    SetccExt { cond: Cond, ty: Ty, dst: u32, lhs: u32, rhs: u32, ext_dst: u32, from: Width },
    /// Superinstruction: `ArrayLoad` + `Extend` of the loaded value.
    LoadExt { dst: u32, array: u32, index: u32, ext_dst: u32, from: Width },
    /// Superinstruction: the canonical loop back-edge — non-trapping
    /// integer `Bin`, `Extend` of its result, then a terminating
    /// `CondBr` that reads the extended value.
    BinExtBr {
        op: BinOp,
        ty: Ty,
        dst: u32,
        lhs: u32,
        rhs: u32,
        ext_dst: u32,
        from: Width,
        cond: Cond,
        cty: Ty,
        clhs: u32,
        crhs: u32,
        then_pc: u32,
        then_block: u32,
        else_pc: u32,
        else_block: u32,
    },
    /// Superinstruction: two adjacent non-trapping register-to-register
    /// micro-ops executed back to back — one dispatch instead of two.
    /// Built by a generic peephole over every block (see [`Simple`]).
    Pair { a: Simple, b: Simple, cost: u16 },
    /// Superinstruction: three adjacent micro-ops, one dispatch.
    Triple { a: Simple, b: Simple, c: Simple, cost: u16 },
    /// Superinstruction: micro-op + unconditional branch. Fusing the
    /// terminator matters disproportionately: the back-edge dispatch is
    /// paid on every loop iteration.
    PairBr { a: Simple, target_pc: u32, block: u32, cost: u16 },
    /// Superinstruction: micro-op + conditional branch (the generic
    /// sibling of [`Op::BinExtBr`], for back-edges that carry no
    /// extend). `cost` on these four variants is the decode-time sum of
    /// the components' cost-model cycles, so the batched charge needs no
    /// per-dispatch cost lookups.
    PairCondBr {
        a: Simple,
        cond: Cond,
        ty: Ty,
        lhs: u32,
        rhs: u32,
        then_pc: u32,
        then_block: u32,
        else_pc: u32,
        else_block: u32,
        cost: u16,
    },
    /// A block whose source form lacked a terminator; executing it is the
    /// same programming error the tree engine panics on.
    NoTerm,
}

/// A non-trapping, single-output micro-op — the unit of generic fusion
/// ([`Op::Pair`] / [`Op::Triple`] / [`Op::PairBr`] / [`Op::PairCondBr`]).
/// Memory ops, calls, branches, and trapping/float `Bin`s stay on the
/// one-op path.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Simple {
    Const { dst: u32, value: i64 },
    Copy { dst: u32, src: u32 },
    Un { op: UnOp, ty: Ty, dst: u32, src: u32 },
    Bin { op: BinOp, ty: Ty, dst: u32, lhs: u32, rhs: u32 },
    Setcc { cond: Cond, ty: Ty, dst: u32, lhs: u32, rhs: u32 },
    Extend { dst: u32, src: u32, from: Width },
    JustExt { dst: u32, src: u32 },
}

/// Cost-model cycles of one micro-op, summed at decode time into the
/// fused variants' `cost` fields (so the executor's batched charge needs
/// no per-dispatch cost computation). Fits in `u16` with lots of slack:
/// the largest component cost is a float `div`'s.
#[allow(clippy::cast_possible_truncation)]
fn simple_cost(s: Simple) -> u16 {
    let c = match s {
        Simple::Const { .. }
        | Simple::Copy { .. }
        | Simple::Setcc { .. }
        | Simple::Extend { .. } => ALU_COST,
        Simple::Un { op, .. } => un_cost(op),
        Simple::Bin { op, ty, .. } => bin_cost(op, ty),
        Simple::JustExt { .. } => 0,
    };
    c as u16
}

const BRANCH_COST_U16: u16 = BRANCH_COST as u16;

/// The pairable subset of already-decoded ops.
fn as_simple(op: Op) -> Option<Simple> {
    match op {
        Op::Const { dst, value } => Some(Simple::Const { dst, value }),
        Op::Copy { dst, src } => Some(Simple::Copy { dst, src }),
        Op::Un { op, ty, dst, src } => Some(Simple::Un { op, ty, dst, src }),
        Op::Bin { op, ty, dst, lhs, rhs } if fusable_bin(op, ty) => {
            Some(Simple::Bin { op, ty, dst, lhs, rhs })
        }
        Op::Setcc { cond, ty, dst, lhs, rhs } => Some(Simple::Setcc { cond, ty, dst, lhs, rhs }),
        Op::Extend { dst, src, from } => Some(Simple::Extend { dst, src, from }),
        Op::JustExt { dst, src } => Some(Simple::JustExt { dst, src }),
        _ => None,
    }
}

/// Greedy left-to-right peephole: merge runs of adjacent fusable ops of
/// one block into [`Op::Triple`]s and [`Op::Pair`]s (widest first). Runs
/// before the block is appended to the function's op array, so only
/// intra-block groups form and block-start pcs (the only branch targets)
/// stay valid. `ids` keeps the first component's [`InstId`] per merged
/// op.
fn pair_merge(ops: &mut Vec<Op>, ids: &mut Vec<InstId>) {
    let mut out_ops = Vec::with_capacity(ops.len());
    let mut out_ids = Vec::with_capacity(ids.len());
    let mut i = 0;
    while i < ops.len() {
        match (
            as_simple(ops[i]),
            ops.get(i + 1).copied().and_then(as_simple),
            ops.get(i + 2).copied().and_then(as_simple),
        ) {
            (Some(a), Some(b), Some(c)) => {
                let cost = simple_cost(a) + simple_cost(b) + simple_cost(c);
                out_ops.push(Op::Triple { a, b, c, cost });
                out_ids.push(ids[i]);
                i += 3;
            }
            (Some(a), Some(b), None) => {
                out_ops.push(Op::Pair { a, b, cost: simple_cost(a) + simple_cost(b) });
                out_ids.push(ids[i]);
                i += 2;
            }
            _ => {
                out_ops.push(ops[i]);
                out_ids.push(ids[i]);
                i += 1;
            }
        }
    }
    *ops = out_ops;
    *ids = out_ids;
    term_merge(ops, ids);
}

/// Fuse a block's terminator into the preceding micro-op when that op
/// survived [`pair_merge`] unpaired: `[.., s, br]` becomes
/// `[.., PairBr(s)]` (and likewise for `condbr`).
fn term_merge(ops: &mut Vec<Op>, ids: &mut Vec<InstId>) {
    let n = ops.len();
    if n < 2 {
        return;
    }
    let Some(a) = as_simple(ops[n - 2]) else { return };
    let cost = simple_cost(a) + BRANCH_COST_U16;
    let fused = match ops[n - 1] {
        Op::Br { pc, block } => Op::PairBr { a, target_pc: pc, block, cost },
        Op::CondBr { cond, ty, lhs, rhs, then_pc, then_block, else_pc, else_block } => {
            Op::PairCondBr { a, cond, ty, lhs, rhs, then_pc, then_block, else_pc, else_block, cost }
        }
        _ => return,
    };
    ops.truncate(n - 2);
    let id = ids[n - 2];
    ids.truncate(n - 2);
    ops.push(fused);
    ids.push(id);
}

/// One pre-decoded function.
#[derive(Debug)]
pub(crate) struct DecodedFunc {
    /// Function name, cloned so trap construction needs no module access.
    pub name: String,
    /// Parameter registers with the canonicalization width of their
    /// declared type (`None` for 64-bit / float parameters).
    pub params: Vec<(u32, Option<Width>)>,
    /// Frame size in registers.
    pub reg_count: usize,
    /// The flattened op array.
    pub ops: Vec<Op>,
    /// Cold parallel array: the source [`InstId`] of each op's first
    /// component, for trap locations.
    pub ids: Vec<InstId>,
    /// Pooled call-argument registers ([`Op::Call`] indexes this).
    pub call_args: Vec<u32>,
}

/// A fully pre-decoded module.
#[derive(Debug)]
pub(crate) struct DecodedModule {
    pub funcs: Vec<DecodedFunc>,
}

/// Decode every function of `module`.
pub(crate) fn decode_module(module: &Module) -> DecodedModule {
    DecodedModule { funcs: module.functions.iter().map(decode_function).collect() }
}

/// Index of the next non-`nop` instruction at or after `i`, if any.
fn next_live(insts: &[Inst], i: usize) -> Option<usize> {
    (i..insts.len()).find(|&j| !matches!(insts[j], Inst::Nop))
}

/// Whether `Bin { op, ty }` is fusable with a following extend: it must
/// not be able to trap mid-superinstruction (no `div`/`rem`) and must be
/// an integer op (extending a float bit-pattern is legal IR but stays on
/// the generic path).
fn fusable_bin(op: BinOp, ty: Ty) -> bool {
    !op.may_trap() && ty != Ty::F64
}

#[allow(clippy::too_many_lines)]
fn decode_function(f: &Function) -> DecodedFunc {
    let mut ops: Vec<Op> = Vec::new();
    let mut ids: Vec<InstId> = Vec::new();
    let mut call_args: Vec<u32> = Vec::new();
    let mut block_pc = vec![0u32; f.blocks.len()];

    for (b, block) in f.blocks.iter().enumerate() {
        block_pc[b] = ops.len() as u32;
        let insts = &block.insts;
        let mut terminated = false;
        let mut i = 0;
        while let Some(cur) = next_live(insts, i) {
            let at = InstId::new(BlockId(b as u32), cur);
            // Fusion lookahead. Components must be adjacent modulo `nop`
            // tombstones (which the tree engine skips without observable
            // effect, so consuming them silently is exact).
            let fused = match insts[cur] {
                Inst::Bin { op, ty, dst, lhs, rhs } if fusable_bin(op, ty) => {
                    next_live(insts, cur + 1).and_then(|j| match insts[j] {
                        Inst::Extend { dst: ext_dst, src, from } if src == dst => {
                            // Third component: a terminating CondBr that
                            // reads the extended value.
                            let tail = next_live(insts, j + 1).and_then(|k| match insts[k] {
                                Inst::CondBr { cond, ty: cty, lhs: clhs, rhs: crhs, then_bb, else_bb }
                                    if clhs == ext_dst || crhs == ext_dst =>
                                {
                                    Some((k, cond, cty, clhs, crhs, then_bb, else_bb))
                                }
                                _ => None,
                            });
                            match tail {
                                Some((k, cond, cty, clhs, crhs, then_bb, else_bb)) => Some((
                                    k + 1,
                                    true,
                                    Op::BinExtBr {
                                        op,
                                        ty,
                                        dst: dst.0,
                                        lhs: lhs.0,
                                        rhs: rhs.0,
                                        ext_dst: ext_dst.0,
                                        from,
                                        cond,
                                        cty,
                                        clhs: clhs.0,
                                        crhs: crhs.0,
                                        then_pc: then_bb.0,
                                        then_block: then_bb.0,
                                        else_pc: else_bb.0,
                                        else_block: else_bb.0,
                                    },
                                )),
                                None => Some((
                                    j + 1,
                                    false,
                                    Op::BinExt {
                                        op,
                                        ty,
                                        dst: dst.0,
                                        lhs: lhs.0,
                                        rhs: rhs.0,
                                        ext_dst: ext_dst.0,
                                        from,
                                    },
                                )),
                            }
                        }
                        _ => None,
                    })
                }
                Inst::Setcc { cond, ty, dst, lhs, rhs } => {
                    next_live(insts, cur + 1).and_then(|j| match insts[j] {
                        Inst::Extend { dst: ext_dst, src, from } if src == dst => Some((
                            j + 1,
                            false,
                            Op::SetccExt {
                                cond,
                                ty,
                                dst: dst.0,
                                lhs: lhs.0,
                                rhs: rhs.0,
                                ext_dst: ext_dst.0,
                                from,
                            },
                        )),
                        _ => None,
                    })
                }
                Inst::ArrayLoad { dst, array, index, .. } => {
                    next_live(insts, cur + 1).and_then(|j| match insts[j] {
                        Inst::Extend { dst: ext_dst, src, from } if src == dst => Some((
                            j + 1,
                            false,
                            Op::LoadExt {
                                dst: dst.0,
                                array: array.0,
                                index: index.0,
                                ext_dst: ext_dst.0,
                                from,
                            },
                        )),
                        _ => None,
                    })
                }
                _ => None,
            };
            if let Some((next_i, is_term, op)) = fused {
                ops.push(op);
                ids.push(at);
                i = next_i;
                if is_term {
                    terminated = true;
                    break;
                }
                continue;
            }

            // Plain (unfused) decode of one instruction.
            let op = match insts[cur] {
                Inst::Nop => unreachable!("next_live skips tombstones"),
                Inst::Const { dst, value, .. } => Op::Const { dst: dst.0, value },
                Inst::ConstF { dst, value } => {
                    Op::ConstF { dst: dst.0, bits: value.to_bits() as i64 }
                }
                Inst::Copy { dst, src, .. } => Op::Copy { dst: dst.0, src: src.0 },
                Inst::Un { op, ty, dst, src } => Op::Un { op, ty, dst: dst.0, src: src.0 },
                Inst::Bin { op, ty, dst, lhs, rhs } => {
                    Op::Bin { op, ty, dst: dst.0, lhs: lhs.0, rhs: rhs.0 }
                }
                Inst::Setcc { cond, ty, dst, lhs, rhs } => {
                    Op::Setcc { cond, ty, dst: dst.0, lhs: lhs.0, rhs: rhs.0 }
                }
                Inst::Extend { dst, src, from } => Op::Extend { dst: dst.0, src: src.0, from },
                Inst::JustExtended { dst, src, .. } => Op::JustExt { dst: dst.0, src: src.0 },
                Inst::NewArray { dst, len, elem } => {
                    Op::NewArray { dst: dst.0, len: len.0, elem }
                }
                Inst::ArrayLen { dst, array } => Op::ArrayLen { dst: dst.0, array: array.0 },
                Inst::ArrayLoad { dst, array, index, .. } => {
                    Op::Load { dst: dst.0, array: array.0, index: index.0 }
                }
                Inst::ArrayStore { array, index, src, .. } => {
                    Op::Store { array: array.0, index: index.0, src: src.0 }
                }
                Inst::Call { dst, func, ref args } => {
                    let args_at = call_args.len() as u32;
                    call_args.extend(args.iter().map(|a| a.0));
                    Op::Call {
                        dst: dst.map_or(NO_REG, |d| d.0),
                        callee: func.0,
                        args_at,
                        args_len: args.len() as u32,
                    }
                }
                Inst::Br { target } => Op::Br { pc: target.0, block: target.0 },
                Inst::CondBr { cond, ty, lhs, rhs, then_bb, else_bb } => Op::CondBr {
                    cond,
                    ty,
                    lhs: lhs.0,
                    rhs: rhs.0,
                    then_pc: then_bb.0,
                    then_block: then_bb.0,
                    else_pc: else_bb.0,
                    else_block: else_bb.0,
                },
                Inst::Ret { value } => Op::Ret { src: value.map_or(NO_REG, |v| v.0) },
            };
            let is_term =
                matches!(insts[cur], Inst::Br { .. } | Inst::CondBr { .. } | Inst::Ret { .. });
            ops.push(op);
            ids.push(at);
            i = cur + 1;
            if is_term {
                terminated = true;
                break;
            }
        }
        if !terminated {
            ops.push(Op::NoTerm);
            ids.push(InstId::new(BlockId(b as u32), insts.len()));
        }
        // Generic pairing peephole over just-decoded block.
        let mut bops = ops.split_off(block_pc[b] as usize);
        let mut bids = ids.split_off(block_pc[b] as usize);
        pair_merge(&mut bops, &mut bids);
        ops.extend(bops);
        ids.extend(bids);
    }

    // Second pass: branch targets were recorded as block ids; resolve
    // them to op-array offsets now that every block's start pc is known.
    for op in &mut ops {
        match op {
            Op::Br { pc, block } => *pc = block_pc[*block as usize],
            Op::PairBr { target_pc, block, .. } => *target_pc = block_pc[*block as usize],
            Op::CondBr { then_pc, then_block, else_pc, else_block, .. }
            | Op::BinExtBr { then_pc, then_block, else_pc, else_block, .. }
            | Op::PairCondBr { then_pc, then_block, else_pc, else_block, .. } => {
                *then_pc = block_pc[*then_block as usize];
                *else_pc = block_pc[*else_block as usize];
            }
            _ => {}
        }
    }

    DecodedFunc {
        name: f.name.clone(),
        params: f
            .params
            .iter()
            .map(|&(r, ty)| (r.0, ty.width()))
            .collect(),
        reg_count: f.reg_count as usize,
        ops,
        ids,
        call_args,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::parse_module;

    fn decode_first(src: &str) -> DecodedFunc {
        let m = parse_module(src).unwrap();
        decode_module(&m).funcs.into_iter().next().unwrap()
    }

    #[test]
    fn nops_are_not_emitted_and_branches_resolve() {
        let f = decode_first(
            "func @f(i32) -> i32 {\nb0:\n    br b1\nb1:\n    ret r0\n}\n",
        );
        assert_eq!(f.ops.len(), 2);
        assert!(matches!(f.ops[0], Op::Br { pc: 1, block: 1 }));
        assert!(matches!(f.ops[1], Op::Ret { .. }));
    }

    #[test]
    fn bin_extend_condbr_fuses_into_the_backedge_superinstruction() {
        let f = decode_first(
            "func @f(i32) -> i32 {\nb0:\n    r1 = const.i32 1\n    r0 = sub.i32 r0, r1\n    r0 = extend.32 r0\n    condbr gt.i32 r0, r1, b0, b1\nb1:\n    ret r0\n}\n",
        );
        // const, fused sub+extend+condbr, ret
        assert_eq!(f.ops.len(), 3);
        assert!(matches!(f.ops[1], Op::BinExtBr { op: BinOp::Sub, then_pc: 0, .. }));
        // Trap location of the fused op is its first component.
        assert_eq!(f.ids[1], InstId::new(BlockId(0), 1));
    }

    #[test]
    fn load_extend_fuses() {
        let f = decode_first(
            "func @f(i32) -> i32 {\nb0:\n    r1 = newarray.i8 r0\n    r2 = const.i32 0\n    r3 = aload.i8 r1, r2\n    r3 = extend.8 r3\n    ret r3\n}\n",
        );
        assert!(f.ops.iter().any(|o| matches!(o, Op::LoadExt { from: Width::W8, .. })));
        assert!(!f.ops.iter().any(|o| matches!(o, Op::Extend { .. })));
    }

    #[test]
    fn trapping_bins_do_not_fuse() {
        let f = decode_first(
            "func @f(i32, i32) -> i32 {\nb0:\n    r2 = div.i32 r0, r1\n    r2 = extend.32 r2\n    ret r2\n}\n",
        );
        assert!(f.ops.iter().any(|o| matches!(o, Op::Bin { op: BinOp::Div, .. })));
        assert!(f.ops.iter().any(|o| matches!(o, Op::Extend { .. })));
    }

    #[test]
    fn extend_of_other_register_does_not_fuse() {
        // The extend reads r0, not the bin destination r2: no BinExt
        // superinstruction — the two land in a generic Pair instead.
        let f = decode_first(
            "func @f(i32, i32) -> i32 {\nb0:\n    r2 = add.i32 r0, r1\n    r3 = extend.32 r0\n    ret r3\n}\n",
        );
        assert!(!f.ops.iter().any(|o| matches!(o, Op::BinExt { .. })));
        assert!(f.ops.iter().any(|o| matches!(
            o,
            Op::Pair { a: Simple::Bin { .. }, b: Simple::Extend { .. }, .. }
        )));
    }

    #[test]
    fn adjacent_alu_ops_fuse_into_a_triple() {
        // mul, add, copy, ret: a three-wide run before a non-fusable
        // terminator becomes one Triple.
        let f = decode_first(
            "func @f(i32, i32) -> i32 {\nb0:\n    r2 = mul.i32 r0, r1\n    r3 = add.i32 r2, r1\n    r4 = copy.i32 r3\n    ret r4\n}\n",
        );
        assert_eq!(f.ops.len(), 2);
        assert!(matches!(
            f.ops[0],
            Op::Triple {
                a: Simple::Bin { op: BinOp::Mul, .. },
                b: Simple::Bin { op: BinOp::Add, .. },
                c: Simple::Copy { .. },
                ..
            }
        ));
        // Fused trap location is the first component's.
        assert_eq!(f.ids[0], InstId::new(BlockId(0), 0));
    }

    #[test]
    fn terminators_fuse_with_the_preceding_micro_op() {
        // Loop back-edge with no extend in sight: `sub` + `condbr`
        // becomes one PairCondBr; `add` + `br` becomes one PairBr.
        let f = decode_first(
            "func @f(i32) -> i32 {\nb0:\n    r1 = const.i32 1\n    br b1\nb1:\n    r0 = sub.i32 r0, r1\n    condbr gt.i32 r0, r1, b1, b2\nb2:\n    r0 = add.i32 r0, r1\n    br b3\nb3:\n    ret r0\n}\n",
        );
        // Each block collapses to a single fused op.
        assert_eq!(f.ops.len(), 4);
        assert!(matches!(f.ops[0], Op::PairBr { a: Simple::Const { .. }, target_pc: 1, .. }));
        // The back-edge's then_pc points back at b1's own (fused) op.
        assert!(matches!(
            f.ops[1],
            Op::PairCondBr { a: Simple::Bin { op: BinOp::Sub, .. }, then_pc: 1, else_pc: 2, .. }
        ));
        assert!(matches!(
            f.ops[2],
            Op::PairBr { a: Simple::Bin { op: BinOp::Add, .. }, target_pc: 3, .. }
        ));
        assert!(matches!(f.ops[3], Op::Ret { .. }));
    }

    #[test]
    fn trapping_bins_never_pair() {
        let f = decode_first(
            "func @f(i32, i32) -> i32 {\nb0:\n    r2 = div.i32 r0, r1\n    r3 = add.i32 r2, r1\n    ret r3\n}\n",
        );
        assert!(!f.ops.iter().any(|o| matches!(o, Op::Pair { .. })));
    }

    #[test]
    fn call_arguments_are_pooled() {
        let f = decode_first(
            "func @f(i32, i32) -> i32 {\nb0:\n    r2 = call @g(r1, r0)\n    ret r2\n}\nfunc @g(i32, i32) -> i32 {\nb0:\n    ret r0\n}\n",
        );
        assert_eq!(f.call_args, vec![1, 0]);
        assert!(matches!(f.ops[0], Op::Call { args_at: 0, args_len: 2, callee: 1, .. }));
    }

    #[test]
    fn op_stays_compact() {
        // The dispatch loop's working set: one op is at most 56 bytes
        // (the three-component back-edge superinstruction).
        assert!(std::mem::size_of::<Op>() <= 56, "{}", std::mem::size_of::<Op>());
    }
}
