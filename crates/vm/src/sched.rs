//! A static list-scheduling cycle estimator for an in-order 2-issue
//! machine (Itanium-flavoured).
//!
//! The interpreter's [`cost`](crate::cost) model charges every executed
//! instruction a flat latency; real Itanium performance is governed by
//! *dependence chains* and *issue slots*. This module schedules each
//! basic block on an abstract 2-issue in-order core with per-op
//! latencies and reports the block's cycle count, so a whole function's
//! estimated time is `Σ block_cycles(b) · freq(b)`.
//!
//! An eliminated `sxt4` helps twice: it frees an issue slot *and*
//! shortens the dependence chain it sat on — which is why the paper's
//! measured speedups exceed the raw fraction of removed instructions.

use sxe_ir::{BlockId, Function, Inst, Reg};

/// Issue width of the modelled core.
pub const ISSUE_WIDTH: u32 = 2;

/// Latency in cycles of one instruction class.
#[must_use]
pub fn latency(inst: &Inst) -> u32 {
    use sxe_ir::{BinOp, Ty, UnOp};
    match inst {
        Inst::Nop | Inst::JustExtended { .. } => 0,
        Inst::Const { .. } | Inst::ConstF { .. } | Inst::Copy { .. } => 1,
        Inst::Extend { .. } => 1, // sxt4: one ALU cycle on the chain
        Inst::Un { op, .. } => match op {
            UnOp::Neg | UnOp::Not | UnOp::Zext(_) => 1,
            UnOp::I32ToF64 | UnOp::I64ToF64 | UnOp::F64ToI32 | UnOp::F64ToI64 => 6,
            UnOp::FNeg | UnOp::FAbs => 2,
            UnOp::FSqrt => 30,
        },
        Inst::Bin { op, ty, .. } => match (op, ty) {
            (BinOp::Div | BinOp::Rem, Ty::F64) => 32,
            (BinOp::Div | BinOp::Rem, _) => 36, // software divide sequence
            (_, Ty::F64) => 4,
            (BinOp::Mul, _) => 3,
            _ => 1,
        },
        Inst::Setcc { .. } => 1,
        Inst::NewArray { .. } => 20,
        Inst::ArrayLen { .. } => 2,
        Inst::ArrayLoad { .. } => 3, // L1 hit + bounds check folded
        Inst::ArrayStore { .. } => 1,
        Inst::Call { .. } => 8,
        Inst::Br { .. } | Inst::CondBr { .. } | Inst::Ret { .. } => 1,
    }
}

/// Cycle count of one basic block under in-order dual issue: each
/// instruction issues at the earliest cycle where (a) all its register
/// inputs are ready, (b) an issue slot is free, and (c) program order is
/// respected (in-order issue). Returns the cycle at which the terminator
/// completes.
#[must_use]
pub fn block_cycles(f: &Function, b: BlockId) -> u64 {
    let mut ready = vec![0u64; f.reg_count as usize];
    let mut cycle: u64 = 0; // next issue cycle
    let mut slots_used: u32 = 0;
    let mut last_issue: u64 = 0;
    let mut finish: u64 = 0;
    let mut uses = Vec::new();
    for inst in &f.block(b).insts {
        if matches!(inst, Inst::Nop | Inst::JustExtended { .. }) {
            continue;
        }
        uses.clear();
        inst.collect_uses(&mut uses);
        let operands_ready = uses.iter().map(|r: &Reg| ready[r.index()]).max().unwrap_or(0);
        let mut issue = operands_ready.max(last_issue).max(cycle);
        if issue == last_issue && slots_used >= ISSUE_WIDTH {
            issue += 1;
        }
        if issue > last_issue {
            slots_used = 0;
        }
        last_issue = issue;
        slots_used += 1;
        let done = issue + u64::from(latency(inst));
        if let Some(d) = inst.dst() {
            ready[d.index()] = done;
        }
        finish = finish.max(done);
        cycle = issue;
    }
    finish
}

/// Estimated execution time of a function: per-block scheduled cycles
/// weighted by measured block execution counts (from the VM profile).
///
/// # Panics
/// Panics if `counts` does not cover every block.
#[must_use]
pub fn function_cycles(f: &Function, counts: &[u64]) -> u64 {
    assert!(counts.len() >= f.blocks.len(), "profile must cover all blocks");
    f.block_ids()
        .map(|b| block_cycles(f, b) * counts[b.index()])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::parse_function;

    #[test]
    fn dependent_chain_is_serial() {
        // Three dependent adds: 3 cycles of latency, not 2 (issue width
        // does not help a chain).
        let f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = add.i32 r0, r0\n    r2 = add.i32 r1, r1\n    r3 = add.i32 r2, r2\n    ret r3\n}\n",
        )
        .unwrap();
        let chain = block_cycles(&f, sxe_ir::BlockId(0));
        // add(1) -> add(2) -> add(3) -> ret(4..)
        assert!(chain >= 4, "{chain}");
    }

    #[test]
    fn independent_ops_dual_issue() {
        // Four independent constants: two cycles of issue, not four.
        let f = parse_function(
            "func @f() -> i32 {\n\
             b0:\n    r0 = const.i32 1\n    r1 = const.i32 2\n    r2 = const.i32 3\n    r3 = const.i32 4\n    ret r0\n}\n",
        )
        .unwrap();
        let serial_estimate = 5; // if single-issue
        let c = block_cycles(&f, sxe_ir::BlockId(0));
        assert!(c < serial_estimate, "{c}");
    }

    #[test]
    fn extend_lengthens_the_chain() {
        let with = parse_function(
            "func @f(i32, i32) -> f64 {\n\
             b0:\n    r2 = add.i32 r0, r1\n    r2 = extend.32 r2\n    r3 = i32tof64.f64 r2\n    ret r3\n}\n",
        )
        .unwrap();
        let without = parse_function(
            "func @f(i32, i32) -> f64 {\n\
             b0:\n    r2 = add.i32 r0, r1\n    r3 = i32tof64.f64 r2\n    ret r3\n}\n",
        )
        .unwrap();
        assert!(
            block_cycles(&with, sxe_ir::BlockId(0))
                > block_cycles(&without, sxe_ir::BlockId(0))
        );
    }

    #[test]
    fn dummies_are_free() {
        let with = parse_function(
            "func @f(i32, i32) -> i32 {\n\
             b0:\n    r2 = newarray.i32 r0\n    r3 = aload.i32 r2, r1\n    r1 = justext.32 r1\n    ret r3\n}\n",
        )
        .unwrap();
        let without = parse_function(
            "func @f(i32, i32) -> i32 {\n\
             b0:\n    r2 = newarray.i32 r0\n    r3 = aload.i32 r2, r1\n    ret r3\n}\n",
        )
        .unwrap();
        assert_eq!(
            block_cycles(&with, sxe_ir::BlockId(0)),
            block_cycles(&without, sxe_ir::BlockId(0))
        );
    }

    #[test]
    fn function_cycles_weights_by_frequency() {
        let f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    br b1\n\
             b1:\n    r1 = const.i32 1\n    r0 = sub.i32 r0, r1\n    condbr gt.i32 r0, r1, b1, b2\n\
             b2:\n    ret r0\n}\n",
        )
        .unwrap();
        let cold = function_cycles(&f, &[1, 1, 1]);
        let hot = function_cycles(&f, &[1, 1000, 1]);
        assert!(hot > cold * 100);
    }
}
