//! Glue for [`Engine::Native`](crate::Engine::Native): the runtime
//! helpers and accounting callbacks injected into `sxe-native`.
//!
//! The native backend knows nothing about this VM — it calls back
//! through the [`Helpers`] table for everything that must share state
//! with the interpreter heap, and every helper reproduces the decoded
//! engine's semantics *by calling the same code* ([`Heap::load_checked`]
//! and friends), so the two execution paths cannot drift. Helpers signal
//! traps by storing a trap code into the [`NativeCtx`]; the generated
//! call site checks it immediately.
//!
//! Safety: `NativeCtx::user` carries a `*mut Heap` installed by
//! [`crate::Vm::call`] for exactly the duration of one native run, and
//! generated code is single-threaded, so each helper has exclusive
//! access for its call.

use sxe_ir::{eval, Target, TrapKind};
use sxe_native::{code_elem, trap_code, Accounting, Helpers, NativeCtx};

use crate::heap::Heap;

/// Target flavour encoding for [`NativeCtx::target`].
pub(crate) fn target_code(t: Target) -> u32 {
    match t {
        Target::Ia64 => 0,
        Target::Ppc64 => 1,
        Target::Mips64 => 2,
    }
}

fn ctx_target(ctx: &NativeCtx) -> Target {
    match ctx.target {
        0 => Target::Ia64,
        1 => Target::Ppc64,
        _ => Target::Mips64,
    }
}

/// # Safety
/// Only called from helpers invoked by generated code while the VM has
/// parked a live `&mut Heap` in `ctx.user`.
unsafe fn heap_mut<'a>(ctx: *mut NativeCtx) -> &'a mut Heap {
    &mut *(*ctx).user.cast::<Heap>()
}

extern "C" fn aload(ctx: *mut NativeCtx, aref: i64, index: i64) -> i64 {
    // SAFETY: see `heap_mut`.
    unsafe {
        let target = ctx_target(&*ctx);
        match heap_mut(ctx).load_checked(aref, index, target) {
            Ok(v) => v,
            Err(k) => {
                (*ctx).trap_kind = trap_code(k);
                0
            }
        }
    }
}

extern "C" fn astore(ctx: *mut NativeCtx, aref: i64, index: i64, value: i64) {
    // SAFETY: see `heap_mut`.
    unsafe {
        if let Err(k) = heap_mut(ctx).store_checked(aref, index, value) {
            (*ctx).trap_kind = trap_code(k);
        }
    }
}

extern "C" fn newarray(ctx: *mut NativeCtx, raw_len: i64, elem: u32) -> i64 {
    // Length check is a 32-bit compare, exactly like the interpreters.
    let l32 = raw_len as i32;
    // SAFETY: see `heap_mut`.
    unsafe {
        if l32 < 0 {
            (*ctx).trap_kind = trap_code(TrapKind::NegativeArraySize);
            return 0;
        }
        match heap_mut(ctx).alloc(code_elem(elem), l32 as u32) {
            Some(r) => r,
            None => {
                (*ctx).trap_kind = trap_code(TrapKind::ResourceExhausted);
                0
            }
        }
    }
}

extern "C" fn arraylen(ctx: *mut NativeCtx, aref: i64) -> i64 {
    // SAFETY: see `heap_mut`.
    unsafe {
        match heap_mut(ctx).get(aref) {
            Some(a) => i64::from(a.len()),
            None => {
                (*ctx).trap_kind = trap_code(TrapKind::WildAddress);
                0
            }
        }
    }
}

extern "C" fn d2i(x: f64) -> i64 {
    eval::d2i(x)
}

extern "C" fn d2l(x: f64) -> i64 {
    eval::d2l(x)
}

extern "C" fn frem(a: f64, b: f64) -> f64 {
    // `eval::f64_bin(Rem)` is Rust `%` — IEEE remainder-by-truncation.
    a % b
}

/// The helper table for this VM's heap and float semantics.
pub(crate) fn helpers() -> Helpers {
    Helpers { aload, astore, newarray, arraylen, d2i, d2l, frem }
}

/// Accounting callbacks: the VM's own cost model and mnemonic indexing,
/// handed to the code generator so the per-segment histograms can never
/// disagree with interpreter counters.
pub(crate) fn accounting() -> Accounting {
    Accounting { cost_of: crate::cost::cost_of, op_slot: crate::counters::op_index }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::Ty;

    fn ctx_with(heap: &mut Heap, target: Target) -> NativeCtx {
        NativeCtx {
            trap_kind: sxe_native::TRAP_NONE,
            trap_site: 0,
            fuel: 0,
            depth: 0,
            user: (heap as *mut Heap).cast(),
            target: target_code(target),
            _pad: 0,
        }
    }

    #[test]
    fn helpers_mirror_heap_semantics() {
        let mut heap = Heap::new();
        let mut ctx = ctx_with(&mut heap, Target::Ia64);
        let h = helpers();
        let aref = (h.newarray)(&mut ctx, 4, sxe_native::elem_code(Ty::I32));
        assert_eq!(ctx.trap_kind, sxe_native::TRAP_NONE);
        assert_eq!(aref, 1);
        (h.astore)(&mut ctx, aref, 0, -1);
        // Ia64 i32 loads zero-extend.
        assert_eq!((h.aload)(&mut ctx, aref, 0), 0xFFFF_FFFF);
        assert_eq!((h.arraylen)(&mut ctx, aref), 4);
        // Ppc64 sign-extends the same element.
        ctx.target = target_code(Target::Ppc64);
        assert_eq!((h.aload)(&mut ctx, aref, 0), -1);
        assert_eq!(ctx.trap_kind, sxe_native::TRAP_NONE);
    }

    #[test]
    fn helpers_trap_like_the_interpreters() {
        let mut heap = Heap::new();
        let mut ctx = ctx_with(&mut heap, Target::Ia64);
        let h = helpers();
        let aref = (h.newarray)(&mut ctx, 2, sxe_native::elem_code(Ty::I64));
        // Out of bounds on the low 32 bits.
        (h.aload)(&mut ctx, aref, 2);
        assert_eq!(sxe_native::code_trap(ctx.trap_kind), Some(TrapKind::IndexOutOfBounds));
        ctx.trap_kind = sxe_native::TRAP_NONE;
        // In-bounds low 32 bits but garbage upper bits: wild address.
        (h.aload)(&mut ctx, aref, 1 | (1 << 32));
        assert_eq!(sxe_native::code_trap(ctx.trap_kind), Some(TrapKind::WildAddress));
        ctx.trap_kind = sxe_native::TRAP_NONE;
        // Negative 32-bit length.
        (h.newarray)(&mut ctx, -5, sxe_native::elem_code(Ty::I8));
        assert_eq!(sxe_native::code_trap(ctx.trap_kind), Some(TrapKind::NegativeArraySize));
        ctx.trap_kind = sxe_native::TRAP_NONE;
        // Null reference.
        (h.arraylen)(&mut ctx, 0);
        assert_eq!(sxe_native::code_trap(ctx.trap_kind), Some(TrapKind::WildAddress));
    }

    #[test]
    fn float_helpers_match_eval() {
        let h = helpers();
        assert_eq!((h.d2i)(f64::NAN), 0);
        assert_eq!((h.d2i)(1e300), i64::from(i32::MAX));
        assert_eq!((h.d2l)(-1e300), i64::MIN);
        assert_eq!((h.frem)(7.5, 2.0), 7.5 % 2.0);
    }

    #[test]
    fn hist_and_flat_counters_have_matching_shape() {
        // `Hist::per_op` is folded index-for-index into
        // `FlatCounters::per_op`; both must be MNEMONICS-shaped.
        assert_eq!(sxe_native::Hist::default().per_op.len(), crate::MNEMONICS.len());
    }
}
