//! The VM heap: arrays with Java-style semantics.

use sxe_ir::{Target, Ty};

/// One heap-allocated array.
#[derive(Debug, Clone)]
pub struct ArrayObj {
    elem: Ty,
    /// Elements in canonical form: narrow integers stored sign-extended,
    /// `f64` stored as raw bits.
    data: Vec<i64>,
}

impl ArrayObj {
    fn canonicalize(elem: Ty, v: i64) -> i64 {
        match elem {
            Ty::I8 => v as i8 as i64,
            Ty::I16 => v as i16 as i64,
            Ty::I32 => v as i32 as i64,
            Ty::I64 | Ty::F64 => v,
        }
    }

    /// Element count.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.data.len() as u32
    }

    /// Whether the array has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element type.
    #[must_use]
    pub fn elem(&self) -> Ty {
        self.elem
    }

    /// Load element `i`, applying the target's extension behaviour for
    /// narrow elements: `i8`/`i16` load sign-extended on every target
    /// (Java `baload`/`saload`); `i32` loads zero-extend on IA64 and
    /// sign-extend on PPC64 (`lwa`) and MIPS64 (`lw`).
    ///
    /// # Panics
    /// Panics if `i` is out of range (the caller performs the bounds
    /// check, which is part of the machine model).
    #[must_use]
    pub fn load(&self, i: u32, target: Target) -> i64 {
        let v = self.data[i as usize];
        match (self.elem, target) {
            (Ty::I32, Target::Ia64) => (v as u32) as i64,
            // Canonical form is sign-extended; elements are stored that way.
            (Ty::I32, Target::Ppc64 | Target::Mips64) => v,
            _ => v,
        }
    }

    /// Store `v` into element `i`; only the low `elem` bits are kept.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn store(&mut self, i: u32, v: i64) {
        self.data[i as usize] = Self::canonicalize(self.elem, v);
    }

    /// Raw canonical contents (for checksums and test assertions).
    #[must_use]
    pub fn raw(&self) -> &[i64] {
        &self.data
    }
}

/// The heap: a bump-allocated arena of arrays. References are dense ids,
/// starting at 1 (0 is reserved so a zero-initialized register is not a
/// valid reference).
#[derive(Debug, Clone, Default)]
pub struct Heap {
    arrays: Vec<ArrayObj>,
    total_elems: u64,
}

/// Maximum total elements across all arrays (memory cap).
pub const HEAP_LIMIT_ELEMS: u64 = 1 << 28;

impl Heap {
    /// Create an empty heap.
    #[must_use]
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Allocate a zero-initialized array; returns its reference value, or
    /// `None` if the memory cap would be exceeded.
    pub fn alloc(&mut self, elem: Ty, len: u32) -> Option<i64> {
        if self.total_elems + len as u64 > HEAP_LIMIT_ELEMS {
            return None;
        }
        self.total_elems += len as u64;
        self.arrays.push(ArrayObj { elem, data: vec![0; len as usize] });
        Some(self.arrays.len() as i64)
    }

    /// Resolve a reference; `None` for null or dangling references.
    #[must_use]
    pub fn get(&self, reference: i64) -> Option<&ArrayObj> {
        let idx = usize::try_from(reference).ok()?.checked_sub(1)?;
        self.arrays.get(idx)
    }

    /// Mutable variant of [`Heap::get`].
    pub fn get_mut(&mut self, reference: i64) -> Option<&mut ArrayObj> {
        let idx = usize::try_from(reference).ok()?.checked_sub(1)?;
        self.arrays.get_mut(idx)
    }

    /// The §3 machine model's address check, shared by both engines:
    /// bounds check on the **low 32 bits** of the index (IA64
    /// `cmp4.ltu`), effective address from the **full register**
    /// (`shladd`). If the check passes but the full value differs (upper
    /// bits were garbage), the access is a wild address.
    pub(crate) fn check_index(&self, aref: i64, raw_index: i64) -> Result<u32, sxe_ir::TrapKind> {
        let a = self.get(aref).ok_or(sxe_ir::TrapKind::WildAddress)?;
        checked_low(a, raw_index)
    }

    /// [`Heap::check_index`] + [`ArrayObj::load`] in a single array
    /// lookup — the decoded engine's fast path (the tree engine keeps
    /// the two-step reference shape; the semantics are identical).
    #[inline]
    pub(crate) fn load_checked(
        &self,
        aref: i64,
        raw_index: i64,
        target: Target,
    ) -> Result<i64, sxe_ir::TrapKind> {
        let a = self.get(aref).ok_or(sxe_ir::TrapKind::WildAddress)?;
        let low = checked_low(a, raw_index)?;
        Ok(a.load(low, target))
    }

    /// [`Heap::check_index`] + [`ArrayObj::store`] in a single array
    /// lookup.
    #[inline]
    pub(crate) fn store_checked(
        &mut self,
        aref: i64,
        raw_index: i64,
        v: i64,
    ) -> Result<(), sxe_ir::TrapKind> {
        let idx = usize::try_from(aref)
            .ok()
            .and_then(|i| i.checked_sub(1))
            .ok_or(sxe_ir::TrapKind::WildAddress)?;
        let a = self.arrays.get_mut(idx).ok_or(sxe_ir::TrapKind::WildAddress)?;
        let low = checked_low(a, raw_index)?;
        a.store(low, v);
        Ok(())
    }

    /// Number of live arrays.
    #[must_use]
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// FNV-1a checksum over all array contents, in allocation order. Used
    /// by the differential tests: two executions with identical observable
    /// behaviour produce identical checksums.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for a in &self.arrays {
            mix(a.data.len() as u64);
            for &v in &a.data {
                mix(v as u64);
            }
        }
        h
    }
}

/// The low-32-bit bounds check against an already-resolved array (the
/// second half of [`Heap::check_index`]).
#[inline]
fn checked_low(a: &ArrayObj, raw_index: i64) -> Result<u32, sxe_ir::TrapKind> {
    let low = raw_index as u32; // cmp4.ltu low, len
    if low >= a.len() {
        return Err(sxe_ir::TrapKind::IndexOutOfBounds);
    }
    // shladd uses the full register: valid only if it equals the
    // zero-extended checked index.
    if raw_index as u64 != low as u64 {
        return Err(sxe_ir::TrapKind::WildAddress);
    }
    Ok(low)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_access() {
        let mut h = Heap::new();
        let r = h.alloc(Ty::I32, 4).unwrap();
        assert_eq!(r, 1);
        assert!(h.get(0).is_none()); // null
        assert!(h.get(2).is_none()); // dangling
        let a = h.get_mut(r).unwrap();
        a.store(0, -7);
        assert_eq!(a.raw()[0], -7);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn i32_load_extension_by_target() {
        let mut h = Heap::new();
        let r = h.alloc(Ty::I32, 1).unwrap();
        h.get_mut(r).unwrap().store(0, -1);
        let a = h.get(r).unwrap();
        assert_eq!(a.load(0, Target::Ia64), 0xFFFF_FFFF); // zero-extended
        assert_eq!(a.load(0, Target::Ppc64), -1); // lwa sign-extends
        assert_eq!(a.load(0, Target::Mips64), -1); // lw sign-extends
    }

    #[test]
    fn narrow_store_truncates() {
        let mut h = Heap::new();
        let r = h.alloc(Ty::I8, 1).unwrap();
        h.get_mut(r).unwrap().store(0, 0x1FF);
        // 0x1FF truncated to 8 bits = -1 as i8.
        assert_eq!(h.get(r).unwrap().load(0, Target::Ia64), -1);
        let r16 = h.alloc(Ty::I16, 1).unwrap();
        h.get_mut(r16).unwrap().store(0, 0x1_8000);
        assert_eq!(h.get(r16).unwrap().load(0, Target::Ia64), -32768);
    }

    #[test]
    fn checksums_differ_on_content() {
        let mut h1 = Heap::new();
        let r = h1.alloc(Ty::I32, 2).unwrap();
        let mut h2 = h1.clone();
        assert_eq!(h1.checksum(), h2.checksum());
        h2.get_mut(r).unwrap().store(1, 42);
        assert_ne!(h1.checksum(), h2.checksum());
    }

    #[test]
    fn heap_limit() {
        let mut h = Heap::new();
        assert!(h.alloc(Ty::I64, u32::MAX).is_none() || HEAP_LIMIT_ELEMS > u32::MAX as u64);
    }
}
