//! The interpreter: executes IR modules under the 64-bit machine model.

use sxe_ir::{eval, BlockId, Cond, FuncId, Inst, InstId, Module, Target, TrapKind, Ty, UnOp};

use crate::cost::cost_of;
use crate::counters::Counters;
use crate::error::Trap;
use crate::heap::Heap;

/// Default instruction budget.
pub const DEFAULT_FUEL: u64 = 4_000_000_000;

/// Maximum call depth.
pub const MAX_CALL_DEPTH: usize = 256;

/// Result of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Raw 64-bit return value (float results are `f64::to_bits`).
    pub ret: Option<i64>,
    /// Checksum of the final heap contents.
    pub heap_checksum: u64,
}

/// A callback invoked at every basic-block entry with the current
/// function, block, and register file — used by analysis-soundness tests
/// and debuggers.
pub type BlockHook = Box<dyn FnMut(FuncId, BlockId, &[i64])>;

/// The virtual machine.
///
/// Registers are 64-bit raw values. The semantics deliberately model the
/// paper's machine: 32-bit operations are performed as full 64-bit
/// operations whose low 32 bits are correct, loads zero-extend on
/// [`Target::Ia64`], bounds checks compare only low 32 bits while
/// effective addresses use the full register. Consequently an *unsound*
/// sign-extension elimination produces observably different results (or a
/// [`TrapKind::WildAddress`]) compared to a reference execution — the
/// foundation of this project's differential testing.
pub struct Machine<'m> {
    module: &'m Module,
    target: Target,
    fuel: u64,
    /// Dynamic counters (public so harnesses can read and reset them).
    pub counters: Counters,
    heap: Heap,
    profile: Option<Vec<Vec<u64>>>,
    block_hook: Option<BlockHook>,
}

impl std::fmt::Debug for Machine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("target", &self.target)
            .field("fuel", &self.fuel)
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

impl<'m> Machine<'m> {
    /// Create a machine for `module` on `target` with [`DEFAULT_FUEL`].
    #[must_use]
    pub fn new(module: &'m Module, target: Target) -> Machine<'m> {
        Machine {
            module,
            target,
            fuel: DEFAULT_FUEL,
            counters: Counters::new(),
            heap: Heap::new(),
            profile: None,
            block_hook: None,
        }
    }

    /// Install a callback invoked at every basic-block entry with the
    /// current register file (before any instruction of the block runs).
    pub fn set_block_hook(&mut self, hook: BlockHook) {
        self.block_hook = Some(hook);
    }

    /// Replace the instruction budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Remaining instruction budget.
    #[must_use]
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// Turn on block-level profiling (the paper's interpreter-collected
    /// branch statistics).
    pub fn enable_profile(&mut self) {
        self.profile = Some(
            self.module
                .functions
                .iter()
                .map(|f| vec![0; f.blocks.len()])
                .collect(),
        );
    }

    /// Execution counts per block of `func` (requires
    /// [`Machine::enable_profile`] before running).
    #[must_use]
    pub fn profile_counts(&self, func: FuncId) -> Option<&[u64]> {
        self.profile.as_ref().map(|p| p[func.index()].as_slice())
    }

    /// The heap (for checksums and assertions).
    #[must_use]
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Discard all run state: fresh heap, zeroed counters and profile
    /// counts (profiling stays enabled if it was), fuel untouched — pair
    /// with [`Machine::set_fuel`] to refill. Installed block hooks are
    /// kept. Lets a harness reuse one machine across independent runs.
    pub fn reset(&mut self) {
        self.heap = Heap::new();
        self.counters = Counters::new();
        if self.profile.is_some() {
            self.enable_profile();
        }
    }

    /// Call `func` with raw argument values.
    ///
    /// Narrow integer arguments should be passed sign-extended (the
    /// calling convention); this entry point canonicalizes them for
    /// convenience.
    ///
    /// # Errors
    /// Returns a [`Trap`] on any machine fault.
    pub fn call(&mut self, func: FuncId, args: &[i64]) -> Result<Outcome, Trap> {
        let f = self.module.function(func);
        assert_eq!(args.len(), f.params.len(), "arity mismatch calling @{}", f.name);
        let canon: Vec<i64> = args
            .iter()
            .zip(&f.params)
            .map(|(&v, &(_, ty))| match ty.width() {
                Some(w) => w.sign_extend(v),
                None => v,
            })
            .collect();
        let ret = self.exec(func, &canon, 0)?;
        Ok(Outcome { ret, heap_checksum: self.heap.checksum() })
    }

    #[allow(clippy::too_many_lines)]
    fn exec(&mut self, func: FuncId, args: &[i64], depth: usize) -> Result<Option<i64>, Trap> {
        let f = self.module.function(func);
        let trap =
            |kind: TrapKind, at: InstId| Trap { kind, func, func_name: f.name.clone(), at };
        let entry_at = InstId::new(BlockId(0), 0);
        if depth > MAX_CALL_DEPTH {
            return Err(trap(TrapKind::ResourceExhausted, entry_at));
        }
        let mut regs = vec![0i64; f.reg_count as usize];
        for (&(r, _), &v) in f.params.iter().zip(args) {
            regs[r.index()] = v;
        }

        let mut block = BlockId(0);
        loop {
            if let Some(p) = &mut self.profile {
                p[func.index()][block.index()] += 1;
            }
            if let Some(hook) = &mut self.block_hook {
                hook(func, block, &regs);
            }
            let insts = &f.block(block).insts;
            let mut next: Option<BlockId> = None;
            for (i, inst) in insts.iter().enumerate() {
                if matches!(inst, Inst::Nop) {
                    continue;
                }
                let at = InstId::new(block, i);
                if self.fuel == 0 {
                    return Err(trap(TrapKind::ResourceExhausted, at));
                }
                self.fuel -= 1;
                self.counters.record(inst, cost_of(inst));

                match *inst {
                    Inst::Nop => unreachable!(),
                    Inst::Const { dst, value, .. } => regs[dst.index()] = value,
                    Inst::ConstF { dst, value } => {
                        regs[dst.index()] = value.to_bits() as i64;
                    }
                    Inst::Copy { dst, src, .. } => regs[dst.index()] = regs[src.index()],
                    Inst::Un { op, ty, dst, src } => {
                        let v = regs[src.index()];
                        regs[dst.index()] = match op {
                            UnOp::Neg => match ty {
                                Ty::F64 => (-f64::from_bits(v as u64)).to_bits() as i64,
                                _ => eval::int_neg_on(v, ty, self.target),
                            },
                            UnOp::Not => !v,
                            // Reads the FULL register: garbage upper bits
                            // produce a wrong double — by design.
                            UnOp::I32ToF64 | UnOp::I64ToF64 => (v as f64).to_bits() as i64,
                            UnOp::F64ToI32 => eval::d2i(f64::from_bits(v as u64)),
                            UnOp::F64ToI64 => eval::d2l(f64::from_bits(v as u64)),
                            UnOp::Zext(w) => w.zero_extend(v),
                            UnOp::FNeg => (-f64::from_bits(v as u64)).to_bits() as i64,
                            UnOp::FSqrt => f64::from_bits(v as u64).sqrt().to_bits() as i64,
                            UnOp::FAbs => f64::from_bits(v as u64).abs().to_bits() as i64,
                        };
                    }
                    Inst::Bin { op, ty, dst, lhs, rhs } => {
                        let a = regs[lhs.index()];
                        let b = regs[rhs.index()];
                        regs[dst.index()] = match ty {
                            Ty::F64 => {
                                let (x, y) = (f64::from_bits(a as u64), f64::from_bits(b as u64));
                                match eval::f64_bin(op, x, y) {
                                    Some(r) => r.to_bits() as i64,
                                    // Bitwise float ops are rejected by
                                    // construction; treat as raw int ops on
                                    // the bits for robustness.
                                    None => eval::int_bin(op, a, b, Ty::I64).unwrap_or(0),
                                }
                            }
                            _ => match eval::int_bin_on(op, a, b, ty, self.target) {
                                Some(v) => v,
                                None => return Err(trap(TrapKind::DivisionByZero, at)),
                            },
                        };
                    }
                    Inst::Setcc { cond, ty, dst, lhs, rhs } => {
                        let t = self.eval_cond(cond, ty, regs[lhs.index()], regs[rhs.index()]);
                        regs[dst.index()] = t as i64;
                    }
                    Inst::Extend { dst, src, from } => {
                        regs[dst.index()] = from.sign_extend(regs[src.index()]);
                    }
                    // Semantically a register move; the assertion it
                    // carries is a compiler-internal fact.
                    Inst::JustExtended { dst, src, .. } => {
                        regs[dst.index()] = regs[src.index()];
                    }
                    Inst::NewArray { dst, len, elem } => {
                        // Length check is a 32-bit compare.
                        let l32 = regs[len.index()] as i32;
                        if l32 < 0 {
                            return Err(trap(TrapKind::NegativeArraySize, at));
                        }
                        match self.heap.alloc(elem, l32 as u32) {
                            Some(r) => regs[dst.index()] = r,
                            None => return Err(trap(TrapKind::ResourceExhausted, at)),
                        }
                    }
                    Inst::ArrayLen { dst, array } => {
                        let a = self
                            .heap
                            .get(regs[array.index()])
                            .ok_or_else(|| trap(TrapKind::WildAddress, at))?;
                        regs[dst.index()] = a.len() as i64;
                    }
                    Inst::ArrayLoad { dst, array, index, elem } => {
                        let _ = elem;
                        let idx = self.check_index(regs[array.index()], regs[index.index()])
                            .map_err(|k| trap(k, at))?;
                        let a = self.heap.get(regs[array.index()]).expect("checked");
                        regs[dst.index()] = a.load(idx, self.target);
                    }
                    Inst::ArrayStore { array, index, src, elem } => {
                        let _ = elem;
                        let idx = self.check_index(regs[array.index()], regs[index.index()])
                            .map_err(|k| trap(k, at))?;
                        let v = regs[src.index()];
                        let a = self.heap.get_mut(regs[array.index()]).expect("checked");
                        a.store(idx, v);
                    }
                    Inst::Call { dst, func: callee, ref args } => {
                        let vals: Vec<i64> = args.iter().map(|a| regs[a.index()]).collect();
                        let r = self.exec(callee, &vals, depth + 1)?;
                        if let Some(d) = dst {
                            regs[d.index()] = r.unwrap_or(0);
                        }
                    }
                    Inst::Br { target } => {
                        next = Some(target);
                        break;
                    }
                    Inst::CondBr { cond, ty, lhs, rhs, then_bb, else_bb } => {
                        let t = self.eval_cond(cond, ty, regs[lhs.index()], regs[rhs.index()]);
                        next = Some(if t { then_bb } else { else_bb });
                        break;
                    }
                    Inst::Ret { value } => {
                        return Ok(value.map(|v| regs[v.index()]));
                    }
                }
            }
            block = next.expect("block must end in a terminator");
        }
    }

    /// The §3 machine model's address check; see [`Heap::check_index`].
    fn check_index(&self, aref: i64, raw_index: i64) -> Result<u32, TrapKind> {
        self.heap.check_index(aref, raw_index)
    }

    fn eval_cond(&self, cond: Cond, ty: Ty, a: i64, b: i64) -> bool {
        eval_cond(cond, ty, a, b)
    }
}

/// Condition evaluation under the machine model (shared by both
/// engines): `f64` compares bit-pattern floats, integer widths defer to
/// [`eval::int_cond`].
pub(crate) fn eval_cond(cond: Cond, ty: Ty, a: i64, b: i64) -> bool {
    match ty {
        Ty::F64 => cond.eval_f64(f64::from_bits(a as u64), f64::from_bits(b as u64)),
        _ => eval::int_cond(cond, ty, a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_module, Width};

    fn run_named(vm: &mut Machine, m: &Module, name: &str, args: &[i64]) -> Result<Outcome, Trap> {
        vm.call(m.function_by_name(name).expect("function exists"), args)
    }

    fn run_one(src: &str, args: &[i64]) -> Result<Outcome, Trap> {
        let m = parse_module(src).unwrap();
        let mut vm = Machine::new(&m, Target::Ia64);
        vm.call(FuncId(0), args)
    }

    #[test]
    fn add_and_return() {
        let out = run_one(
            "func @f(i32, i32) -> i32 {\nb0:\n    r2 = add.i32 r0, r1\n    r2 = extend.32 r2\n    ret r2\n}\n",
            &[40, 2],
        )
        .unwrap();
        assert_eq!(out.ret, Some(42));
    }

    #[test]
    fn upper_bits_garbage_without_extend() {
        // 0x7fffffff + 1 at width 32: low 32 bits = INT_MIN, full 64-bit
        // register = +2^31 (not sign-extended). i2d sees the raw register.
        let src = "func @f(i32, i32) -> f64 {\nb0:\n    r2 = add.i32 r0, r1\n    r3 = i32tof64.f64 r2\n    ret r3\n}\n";
        let out = run_one(src, &[i32::MAX as i64, 1]).unwrap();
        assert_eq!(f64::from_bits(out.ret.unwrap() as u64), 2147483648.0);
        // With the extension the double is the true i32 value.
        let src2 = "func @f(i32, i32) -> f64 {\nb0:\n    r2 = add.i32 r0, r1\n    r2 = extend.32 r2\n    r3 = i32tof64.f64 r2\n    ret r3\n}\n";
        let out2 = run_one(src2, &[i32::MAX as i64, 1]).unwrap();
        assert_eq!(f64::from_bits(out2.ret.unwrap() as u64), -2147483648.0);
    }

    #[test]
    fn compare32_ignores_upper_bits() {
        // r2 = 2^31 (upper bits not sign-extended); 32-bit compare sees
        // INT_MIN < 0 and takes the then-branch.
        let src = "func @f(i32, i32) -> i32 {\nb0:\n    r2 = add.i32 r0, r1\n    r3 = const.i32 0\n    condbr lt.i32 r2, r3, b1, b2\nb1:\n    r4 = const.i32 1\n    ret r4\nb2:\n    r4 = const.i32 2\n    ret r4\n}\n";
        assert_eq!(run_one(src, &[i32::MAX as i64, 1]).unwrap().ret, Some(1));
        // A 64-bit compare sees +2^31 > 0: else-branch.
        let src64 = src.replace("condbr lt.i32", "condbr lt.i64");
        assert_eq!(run_one(&src64, &[i32::MAX as i64, 1]).unwrap().ret, Some(2));
    }

    #[test]
    fn array_roundtrip_and_bounds() {
        let src = "func @f(i32) -> i32 {\nb0:\n    r1 = newarray.i32 r0\n    r2 = const.i32 3\n    r3 = const.i32 77\n    astore.i32 r1, r2, r3\n    r4 = aload.i32 r1, r2\n    ret r4\n}\n";
        assert_eq!(run_one(src, &[8]).unwrap().ret, Some(77));
        let t = run_one(src, &[2]).unwrap_err();
        assert_eq!(t.kind, TrapKind::IndexOutOfBounds);
    }

    #[test]
    fn negative_index_traps_oob() {
        let src = "func @f(i32) -> i32 {\nb0:\n    r1 = newarray.i32 r0\n    r2 = const.i32 -1\n    r3 = aload.i32 r1, r2\n    ret r3\n}\n";
        let t = run_one(src, &[4]).unwrap_err();
        // -1 as u32 = 0xFFFF_FFFF >= len: ArrayIndexOutOfBounds, exactly
        // the Java guarantee the paper's theorems build on.
        assert_eq!(t.kind, TrapKind::IndexOutOfBounds);
    }

    #[test]
    fn wild_address_on_garbage_index() {
        // Build an index whose low 32 bits pass the bounds check but whose
        // upper bits are garbage: 2^32 + 1 via 64-bit arithmetic.
        let src = "func @f(i32) -> i32 {\n\
            b0:\n    r1 = newarray.i32 r0\n    r2 = const.i64 4294967297\n    r3 = aload.i32 r1, r2\n    ret r3\n}\n";
        let t = run_one(src, &[4]).unwrap_err();
        assert_eq!(t.kind, TrapKind::WildAddress);
    }

    #[test]
    fn division_semantics() {
        let src = "func @f(i32, i32) -> i32 {\nb0:\n    r2 = div.i32 r0, r1\n    r2 = extend.32 r2\n    ret r2\n}\n";
        assert_eq!(run_one(src, &[7, -2]).unwrap().ret, Some(-3));
        assert_eq!(run_one(src, &[7, 0]).unwrap_err().kind, TrapKind::DivisionByZero);
        // INT_MIN / -1: 64-bit divide of sign-extended inputs gives +2^31;
        // the low 32 bits are INT_MIN (Java wrap) and extend.32 restores it.
        assert_eq!(run_one(src, &[i32::MIN as i64, -1]).unwrap().ret, Some(i32::MIN as i64));
    }

    #[test]
    fn shifts() {
        let src = "func @f(i32, i32) -> i64 {\nb0:\n    r2 = shru.i32 r0, r1\n    ret r2\n}\n";
        // shru32 of -1 by 4: extract low 32 (0xFFFFFFFF) >> 4.
        assert_eq!(run_one(src, &[-1, 4]).unwrap().ret, Some(0x0FFF_FFFF));
        let src2 = "func @f(i32, i32) -> i64 {\nb0:\n    r2 = shr.i32 r0, r1\n    ret r2\n}\n";
        assert_eq!(run_one(src2, &[-16, 2]).unwrap().ret, Some(-4));
    }

    #[test]
    fn calls_and_profile() {
        let src = "\
func @main(i32) -> i32 {
b0:
    br b1
b1:
    r1 = const.i32 1
    r0 = sub.i32 r0, r1
    r0 = extend.32 r0
    condbr gt.i32 r0, r1, b1, b2
b2:
    r2 = call @double(r0)
    ret r2
}
func @double(i32) -> i32 {
b0:
    r1 = add.i32 r0, r0
    r1 = extend.32 r1
    ret r1
}
";
        let m = parse_module(src).unwrap();
        let mut vm = Machine::new(&m, Target::Ia64);
        vm.enable_profile();
        let out = run_named(&mut vm, &m, "main", &[5]).unwrap();
        assert_eq!(out.ret, Some(2));
        let main = m.function_by_name("main").unwrap();
        let p = vm.profile_counts(main).unwrap();
        assert_eq!(p[0], 1);
        assert_eq!(p[1], 4); // loop executed 4 times (5->1)
        assert_eq!(p[2], 1);
        // 32-bit extends executed: 4 in the loop + 1 in double.
        assert_eq!(vm.counters.extend_count(Some(Width::W32)), 5);
    }

    #[test]
    fn fuel_exhaustion() {
        let src = "func @f() {\nb0:\n    br b0\n}\n";
        let m = parse_module(src).unwrap();
        let mut vm = Machine::new(&m, Target::Ia64);
        vm.set_fuel(1000);
        assert_eq!(
            run_named(&mut vm, &m, "f", &[]).unwrap_err().kind,
            TrapKind::ResourceExhausted
        );
    }

    #[test]
    fn args_are_canonicalized() {
        // Passing an unextended i32 argument still behaves: the call
        // boundary sign-extends.
        let src = "func @f(i32) -> f64 {\nb0:\n    r1 = i32tof64.f64 r0\n    ret r1\n}\n";
        let out = run_one(src, &[0xFFFF_FFFF]).unwrap(); // -1 unextended
        assert_eq!(f64::from_bits(out.ret.unwrap() as u64), -1.0);
    }

    #[test]
    fn f64_ops() {
        let src = "func @f() -> f64 {\nb0:\n    r0 = constf 2.0\n    r1 = constf 8.0\n    r2 = mul.f64 r0, r1\n    r3 = fsqrt.f64 r2\n    ret r3\n}\n";
        let out = run_one(src, &[]).unwrap();
        assert_eq!(f64::from_bits(out.ret.unwrap() as u64), 4.0);
    }

    #[test]
    fn null_references_fault() {
        // Register zero-initialization means a never-assigned "array"
        // register is the null reference: every access faults with
        // WildAddress rather than touching memory.
        for body in [
            "    r2 = len r1
    ret r2
",
            "    r2 = aload.i32 r1, r0
    ret r2
",
            "    astore.i32 r1, r0, r0
    ret r0
",
        ] {
            let src = format!("func @f(i32) -> i32 {{
b0:
{body}}}
");
            let m = parse_module(&src).unwrap();
            let mut vm = Machine::new(&m, Target::Ia64);
            assert_eq!(
                run_named(&mut vm, &m, "f", &[0]).unwrap_err().kind,
                TrapKind::WildAddress,
                "{body}"
            );
        }
    }

    #[test]
    fn ppc64_loads_sign_extend() {
        let src = "func @f(i32) -> i64 {\n\
            b0:\n    r1 = newarray.i32 r0\n    r2 = const.i32 0\n    r3 = const.i32 -5\n    astore.i32 r1, r2, r3\n    r4 = aload.i32 r1, r2\n    ret r4\n}\n";
        let m = parse_module(src).unwrap();
        let mut ia = Machine::new(&m, Target::Ia64);
        assert_eq!(run_named(&mut ia, &m, "f", &[1]).unwrap().ret, Some(0xFFFF_FFFB)); // zero-extended
        let mut ppc = Machine::new(&m, Target::Ppc64);
        assert_eq!(run_named(&mut ppc, &m, "f", &[1]).unwrap().ret, Some(-5)); // lwa
    }
}
