//! Dynamic execution counters — the quantities the paper's Tables 1 and 2
//! report.
//!
//! Two recording surfaces share one mnemonic table ([`MNEMONICS`] /
//! [`op_index`]):
//!
//! * [`Counters`] — the classic per-machine accumulator
//!   ([`record`](Counters::record) takes `&mut self`);
//! * [`SharedCounters`] — an atomic variant whose
//!   [`record`](SharedCounters::record) takes `&self`, so concurrent
//!   machines (e.g. the sharded compiler's profiling runs, or any
//!   driver following `sxe-jit`'s shared-state pattern) can fold into
//!   one set without a lock; [`snapshot`](SharedCounters::snapshot)
//!   yields an ordinary [`Counters`].
//!
//! The mnemonic strings double as the telemetry label tails:
//! [`Counters::record_into`] exports `vm.op.<mnemonic>` counters
//! straight from the same table, so the VM and the metrics registry can
//! never disagree on op names.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use sxe_ir::{Inst, Width};

/// Every instruction mnemonic, indexed by [`op_index`]. The single
/// source of truth for per-op statistics *and* the `vm.op.*` telemetry
/// labels.
pub const MNEMONICS: [&str; 17] = [
    "nop", "const", "constf", "copy", "un", "bin", "set", "extend", "justext", "newarray",
    "len", "aload", "astore", "call", "br", "condbr", "ret",
];

/// The [`MNEMONICS`] index of `inst`.
#[must_use]
pub fn op_index(inst: &Inst) -> usize {
    match inst {
        Inst::Nop => 0,
        Inst::Const { .. } => 1,
        Inst::ConstF { .. } => 2,
        Inst::Copy { .. } => 3,
        Inst::Un { .. } => 4,
        Inst::Bin { .. } => 5,
        Inst::Setcc { .. } => 6,
        Inst::Extend { .. } => 7,
        Inst::JustExtended { .. } => 8,
        Inst::NewArray { .. } => 9,
        Inst::ArrayLen { .. } => 10,
        Inst::ArrayLoad { .. } => 11,
        Inst::ArrayStore { .. } => 12,
        Inst::Call { .. } => 13,
        Inst::Br { .. } => 14,
        Inst::CondBr { .. } => 15,
        Inst::Ret { .. } => 16,
    }
}

/// A short mnemonic for per-op statistics.
#[must_use]
pub fn mnemonic(inst: &Inst) -> &'static str {
    MNEMONICS[op_index(inst)]
}

/// Dynamic instruction counts accumulated during execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    /// Total executed instructions (excluding `nop` tombstones).
    pub insts: u64,
    /// Executed explicit sign extensions by source width `[8, 16, 32]`.
    /// `extends[2]` is the "dynamic count of 32-bit sign extensions" of
    /// Tables 1–2.
    pub extends: [u64; 3],
    /// Executed instructions per mnemonic.
    pub per_op: BTreeMap<&'static str, u64>,
    /// Accumulated cost-model cycles (see [`crate::cost`]).
    pub cycles: u64,
}

impl Counters {
    /// Create zeroed counters.
    #[must_use]
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Record the execution of `inst` costing `cycles`.
    pub fn record(&mut self, inst: &Inst, cycles: u64) {
        self.insts += 1;
        self.cycles += cycles;
        if let Inst::Extend { from, .. } = inst {
            self.extends[width_index(*from)] += 1;
        }
        *self.per_op.entry(mnemonic(inst)).or_insert(0) += 1;
    }

    /// Dynamic count of sign extensions of the given width (`None` sums
    /// all widths).
    #[must_use]
    pub fn extend_count(&self, width: Option<Width>) -> u64 {
        match width {
            Some(w) => self.extends[width_index(w)],
            None => self.extends.iter().sum(),
        }
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        self.insts += other.insts;
        self.cycles += other.cycles;
        for (a, b) in self.extends.iter_mut().zip(other.extends) {
            *a += b;
        }
        for (k, v) in &other.per_op {
            *self.per_op.entry(k).or_insert(0) += v;
        }
    }

    /// Add these counts to a telemetry registry: `vm.insts`,
    /// `vm.cycles`, `vm.extends.{w8,w16,w32}`, and one `vm.op.<mnemonic>`
    /// counter per executed op (labels from [`MNEMONICS`]).
    pub fn record_into(&self, registry: &mut sxe_telemetry::Registry) {
        registry.add("vm.insts", self.insts);
        registry.add("vm.cycles", self.cycles);
        registry.add("vm.extends.w8", self.extends[0]);
        registry.add("vm.extends.w16", self.extends[1]);
        registry.add("vm.extends.w32", self.extends[2]);
        for (op, n) in &self.per_op {
            registry.add(format!("vm.op.{op}"), *n);
        }
    }
}

/// Lock-free shared counters: the same quantities as [`Counters`], but
/// recordable through `&self` from any number of threads. Mirrors the
/// compile pipeline's shared-state pattern (one atomic per quantity,
/// relaxed ordering — totals are exact, inter-counter ordering is not
/// observable).
#[derive(Debug, Default)]
pub struct SharedCounters {
    insts: AtomicU64,
    cycles: AtomicU64,
    extends: [AtomicU64; 3],
    per_op: [AtomicU64; MNEMONICS.len()],
}

impl SharedCounters {
    /// Create zeroed shared counters.
    #[must_use]
    pub fn new() -> SharedCounters {
        SharedCounters::default()
    }

    /// Record the execution of `inst` costing `cycles` (no `&mut`, no
    /// lock).
    pub fn record(&self, inst: &Inst, cycles: u64) {
        self.insts.fetch_add(1, Ordering::Relaxed);
        self.cycles.fetch_add(cycles, Ordering::Relaxed);
        if let Inst::Extend { from, .. } = inst {
            self.extends[width_index(*from)].fetch_add(1, Ordering::Relaxed);
        }
        self.per_op[op_index(inst)].fetch_add(1, Ordering::Relaxed);
    }

    /// Fold a machine's private [`Counters`] in wholesale (cheaper than
    /// per-instruction atomics when the machine ran single-threaded).
    pub fn merge(&self, other: &Counters) {
        self.insts.fetch_add(other.insts, Ordering::Relaxed);
        self.cycles.fetch_add(other.cycles, Ordering::Relaxed);
        for (a, b) in self.extends.iter().zip(other.extends) {
            a.fetch_add(b, Ordering::Relaxed);
        }
        for (k, v) in &other.per_op {
            if let Some(i) = MNEMONICS.iter().position(|m| m == k) {
                self.per_op[i].fetch_add(*v, Ordering::Relaxed);
            }
        }
    }

    /// A plain [`Counters`] copy of the current totals (zero-count ops
    /// omitted, matching what per-machine recording produces).
    #[must_use]
    pub fn snapshot(&self) -> Counters {
        let mut c = Counters::new();
        c.insts = self.insts.load(Ordering::Relaxed);
        c.cycles = self.cycles.load(Ordering::Relaxed);
        for (a, b) in c.extends.iter_mut().zip(&self.extends) {
            *a = b.load(Ordering::Relaxed);
        }
        for (i, n) in self.per_op.iter().enumerate() {
            let n = n.load(Ordering::Relaxed);
            if n > 0 {
                c.per_op.insert(MNEMONICS[i], n);
            }
        }
        c
    }
}

pub(crate) fn width_index(w: Width) -> usize {
    match w {
        Width::W8 => 0,
        Width::W16 => 1,
        Width::W32 => 2,
    }
}

/// [`MNEMONICS`] indices as named constants, for recording surfaces that
/// dispatch on pre-decoded ops rather than [`Inst`] values (the decoded
/// engine). Kept next to the table so the two cannot drift; the
/// `opidx_matches_op_index` test pins every pairing.
pub(crate) mod opidx {
    pub const CONST: usize = 1;
    pub const CONSTF: usize = 2;
    pub const COPY: usize = 3;
    pub const UN: usize = 4;
    pub const BIN: usize = 5;
    pub const SET: usize = 6;
    pub const EXTEND: usize = 7;
    pub const JUSTEXT: usize = 8;
    pub const NEWARRAY: usize = 9;
    pub const LEN: usize = 10;
    pub const ALOAD: usize = 11;
    pub const ASTORE: usize = 12;
    pub const CALL: usize = 13;
    pub const BR: usize = 14;
    pub const CONDBR: usize = 15;
    pub const RET: usize = 16;
}

/// Fixed-slot counters for the decoded engine's hot loop: one add per
/// recorded instruction instead of a `BTreeMap` entry lookup.
/// [`FlatCounters::materialize`] folds the slots into an ordinary
/// [`Counters`] (zero-count ops omitted, exactly like per-instruction
/// recording and [`SharedCounters::snapshot`] produce).
#[derive(Debug, Default)]
pub(crate) struct FlatCounters {
    pub insts: u64,
    pub cycles: u64,
    pub extends: [u64; 3],
    pub per_op: [u64; MNEMONICS.len()],
}

impl FlatCounters {
    /// Record one executed instruction of mnemonic slot `op`. The
    /// engine's hot loop charges through its own register-resident
    /// accumulators (see `exec::Hot`); this all-in-memory variant
    /// remains the reference the equivalence test checks against.
    #[cfg(test)]
    pub fn bump(&mut self, op: usize, cycles: u64) {
        self.insts += 1;
        self.cycles += cycles;
        self.per_op[op] += 1;
    }

    /// Record the width of an executed `extend` (call alongside
    /// [`FlatCounters::bump`] with [`opidx::EXTEND`]).
    #[inline]
    pub fn note_extend(&mut self, from: Width) {
        self.extends[width_index(from)] += 1;
    }

    /// Fold into a plain [`Counters`].
    pub fn materialize(&self) -> Counters {
        let mut c = Counters::new();
        c.insts = self.insts;
        c.cycles = self.cycles;
        c.extends = self.extends;
        for (i, &n) in self.per_op.iter().enumerate() {
            if n > 0 {
                c.per_op.insert(MNEMONICS[i], n);
            }
        }
        c
    }

    /// Zero all slots.
    pub fn clear(&mut self) {
        *self = FlatCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::Reg;

    #[test]
    fn records_extends_by_width() {
        let mut c = Counters::new();
        let e32 = Inst::Extend { dst: Reg(0), src: Reg(0), from: Width::W32 };
        let e8 = Inst::Extend { dst: Reg(0), src: Reg(0), from: Width::W8 };
        c.record(&e32, 1);
        c.record(&e32, 1);
        c.record(&e8, 1);
        assert_eq!(c.extend_count(Some(Width::W32)), 2);
        assert_eq!(c.extend_count(Some(Width::W8)), 1);
        assert_eq!(c.extend_count(None), 3);
        assert_eq!(c.insts, 3);
        assert_eq!(c.per_op["extend"], 3);
    }

    #[test]
    fn merge_sums() {
        let mut a = Counters::new();
        let mut b = Counters::new();
        let i = Inst::Br { target: sxe_ir::BlockId(0) };
        a.record(&i, 2);
        b.record(&i, 3);
        a.merge(&b);
        assert_eq!(a.insts, 2);
        assert_eq!(a.cycles, 5);
        assert_eq!(a.per_op["br"], 2);
    }

    #[test]
    fn mnemonic_table_and_dispatch_agree() {
        // Every mnemonic is unique and op_index stays in range.
        let unique: std::collections::BTreeSet<_> = MNEMONICS.iter().collect();
        assert_eq!(unique.len(), MNEMONICS.len());
        let i = Inst::Ret { value: None };
        assert_eq!(mnemonic(&i), MNEMONICS[op_index(&i)]);
    }

    #[test]
    fn shared_counters_match_private_ones() {
        let e = Inst::Extend { dst: Reg(0), src: Reg(0), from: Width::W32 };
        let b = Inst::Br { target: sxe_ir::BlockId(0) };
        let mut private = Counters::new();
        let shared = SharedCounters::new();
        for _ in 0..5 {
            private.record(&e, 2);
            shared.record(&e, 2);
        }
        private.record(&b, 1);
        shared.record(&b, 1);
        assert_eq!(shared.snapshot(), private);
        // Wholesale merge doubles everything.
        shared.merge(&private);
        let mut doubled = private.clone();
        doubled.merge(&private);
        assert_eq!(shared.snapshot(), doubled);
    }

    #[test]
    fn shared_counters_record_concurrently() {
        let shared = std::sync::Arc::new(SharedCounters::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = std::sync::Arc::clone(&shared);
                std::thread::spawn(move || {
                    let e = Inst::Extend { dst: Reg(0), src: Reg(0), from: Width::W16 };
                    for _ in 0..1000 {
                        s.record(&e, 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let c = shared.snapshot();
        assert_eq!(c.insts, 4000);
        assert_eq!(c.extend_count(Some(Width::W16)), 4000);
        assert_eq!(c.per_op["extend"], 4000);
    }

    #[test]
    fn opidx_matches_op_index() {
        use sxe_ir::{BinOp, BlockId, Cond, FuncId, Ty, UnOp};
        let r = Reg(0);
        let pairs: [(usize, Inst); 16] = [
            (opidx::CONST, Inst::Const { dst: r, value: 0, ty: Ty::I32 }),
            (opidx::CONSTF, Inst::ConstF { dst: r, value: 0.0 }),
            (opidx::COPY, Inst::Copy { dst: r, src: r, ty: Ty::I64 }),
            (opidx::UN, Inst::Un { op: UnOp::Not, ty: Ty::I64, dst: r, src: r }),
            (opidx::BIN, Inst::Bin { op: BinOp::Add, ty: Ty::I32, dst: r, lhs: r, rhs: r }),
            (opidx::SET, Inst::Setcc { cond: Cond::Eq, ty: Ty::I32, dst: r, lhs: r, rhs: r }),
            (opidx::EXTEND, Inst::Extend { dst: r, src: r, from: Width::W32 }),
            (opidx::JUSTEXT, Inst::JustExtended { dst: r, src: r, from: Width::W32 }),
            (opidx::NEWARRAY, Inst::NewArray { dst: r, len: r, elem: Ty::I32 }),
            (opidx::LEN, Inst::ArrayLen { dst: r, array: r }),
            (opidx::ALOAD, Inst::ArrayLoad { dst: r, array: r, index: r, elem: Ty::I32 }),
            (opidx::ASTORE, Inst::ArrayStore { array: r, index: r, src: r, elem: Ty::I32 }),
            (opidx::CALL, Inst::Call { dst: None, func: FuncId(0), args: vec![] }),
            (opidx::BR, Inst::Br { target: BlockId(0) }),
            (opidx::CONDBR, Inst::CondBr {
                cond: Cond::Eq,
                ty: Ty::I32,
                lhs: r,
                rhs: r,
                then_bb: BlockId(0),
                else_bb: BlockId(0),
            }),
            (opidx::RET, Inst::Ret { value: None }),
        ];
        for (idx, inst) in &pairs {
            assert_eq!(*idx, op_index(inst), "{}", mnemonic(inst));
        }
    }

    #[test]
    fn flat_counters_materialize_like_recording() {
        let e = Inst::Extend { dst: Reg(0), src: Reg(0), from: Width::W32 };
        let b = Inst::Br { target: sxe_ir::BlockId(0) };
        let mut reference = Counters::new();
        let mut flat = FlatCounters::default();
        for _ in 0..3 {
            reference.record(&e, 10);
            flat.bump(opidx::EXTEND, 10);
            flat.note_extend(Width::W32);
        }
        reference.record(&b, 12);
        flat.bump(opidx::BR, 12);
        assert_eq!(flat.materialize(), reference);
        flat.clear();
        assert_eq!(flat.materialize(), Counters::new());
    }

    #[test]
    fn registry_export_uses_the_shared_labels() {
        let mut c = Counters::new();
        c.record(&Inst::Extend { dst: Reg(0), src: Reg(0), from: Width::W32 }, 1);
        c.record(&Inst::Br { target: sxe_ir::BlockId(0) }, 1);
        let mut registry = sxe_telemetry::Registry::new();
        c.record_into(&mut registry);
        assert_eq!(registry.counter("vm.insts"), 2);
        assert_eq!(registry.counter("vm.extends.w32"), 1);
        assert_eq!(registry.counter("vm.op.extend"), 1);
        assert_eq!(registry.counter("vm.op.br"), 1);
        let per_op_total: u64 = registry
            .counters()
            .filter(|(k, _)| k.starts_with("vm.op."))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(per_op_total, registry.counter("vm.insts"));
    }
}
