//! Dynamic execution counters — the quantities the paper's Tables 1 and 2
//! report.

use std::collections::BTreeMap;

use sxe_ir::{Inst, Width};

/// Dynamic instruction counts accumulated during execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    /// Total executed instructions (excluding `nop` tombstones).
    pub insts: u64,
    /// Executed explicit sign extensions by source width `[8, 16, 32]`.
    /// `extends[2]` is the "dynamic count of 32-bit sign extensions" of
    /// Tables 1–2.
    pub extends: [u64; 3],
    /// Executed instructions per mnemonic.
    pub per_op: BTreeMap<&'static str, u64>,
    /// Accumulated cost-model cycles (see [`crate::cost`]).
    pub cycles: u64,
}

impl Counters {
    /// Create zeroed counters.
    #[must_use]
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Record the execution of `inst` costing `cycles`.
    pub fn record(&mut self, inst: &Inst, cycles: u64) {
        self.insts += 1;
        self.cycles += cycles;
        if let Inst::Extend { from, .. } = inst {
            self.extends[width_index(*from)] += 1;
        }
        *self.per_op.entry(mnemonic(inst)).or_insert(0) += 1;
    }

    /// Dynamic count of sign extensions of the given width (`None` sums
    /// all widths).
    #[must_use]
    pub fn extend_count(&self, width: Option<Width>) -> u64 {
        match width {
            Some(w) => self.extends[width_index(w)],
            None => self.extends.iter().sum(),
        }
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        self.insts += other.insts;
        self.cycles += other.cycles;
        for (a, b) in self.extends.iter_mut().zip(other.extends) {
            *a += b;
        }
        for (k, v) in &other.per_op {
            *self.per_op.entry(k).or_insert(0) += v;
        }
    }
}

fn width_index(w: Width) -> usize {
    match w {
        Width::W8 => 0,
        Width::W16 => 1,
        Width::W32 => 2,
    }
}

/// A short mnemonic for per-op statistics.
#[must_use]
pub fn mnemonic(inst: &Inst) -> &'static str {
    match inst {
        Inst::Nop => "nop",
        Inst::Const { .. } => "const",
        Inst::ConstF { .. } => "constf",
        Inst::Copy { .. } => "copy",
        Inst::Un { .. } => "un",
        Inst::Bin { .. } => "bin",
        Inst::Setcc { .. } => "set",
        Inst::Extend { .. } => "extend",
        Inst::JustExtended { .. } => "justext",
        Inst::NewArray { .. } => "newarray",
        Inst::ArrayLen { .. } => "len",
        Inst::ArrayLoad { .. } => "aload",
        Inst::ArrayStore { .. } => "astore",
        Inst::Call { .. } => "call",
        Inst::Br { .. } => "br",
        Inst::CondBr { .. } => "condbr",
        Inst::Ret { .. } => "ret",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::Reg;

    #[test]
    fn records_extends_by_width() {
        let mut c = Counters::new();
        let e32 = Inst::Extend { dst: Reg(0), src: Reg(0), from: Width::W32 };
        let e8 = Inst::Extend { dst: Reg(0), src: Reg(0), from: Width::W8 };
        c.record(&e32, 1);
        c.record(&e32, 1);
        c.record(&e8, 1);
        assert_eq!(c.extend_count(Some(Width::W32)), 2);
        assert_eq!(c.extend_count(Some(Width::W8)), 1);
        assert_eq!(c.extend_count(None), 3);
        assert_eq!(c.insts, 3);
        assert_eq!(c.per_op["extend"], 3);
    }

    #[test]
    fn merge_sums() {
        let mut a = Counters::new();
        let mut b = Counters::new();
        let i = Inst::Br { target: sxe_ir::BlockId(0) };
        a.record(&i, 2);
        b.record(&i, 3);
        a.merge(&b);
        assert_eq!(a.insts, 2);
        assert_eq!(a.cycles, 5);
        assert_eq!(a.per_op["br"], 2);
    }
}
