//! The decoded engine: a tight dispatch loop over pre-decoded op arrays
//! (see [`crate::decode`]).
//!
//! Semantics are a bit-exact replica of the tree-walking reference
//! engine ([`crate::Machine::call`]); the two are interchangeable
//! observably (outcome, trap kind, heap checksum, dynamic counters, and
//! block profiles). The loop upholds the same per-instruction contract
//! the tree engine does, component by component for superinstructions:
//!
//! 1. if fuel is zero, trap [`TrapKind::ResourceExhausted`] *without*
//!    recording the instruction;
//! 2. otherwise burn one fuel unit and record the instruction's
//!    mnemonic and cycle cost — *then* execute it, so instructions that
//!    trap (division by zero, bounds faults) are counted, exactly as a
//!    real machine retires the faulting instruction's issue slot;
//! 3. block-entry bookkeeping (profiles, hooks) runs when a branch is
//!    taken, before any instruction of the target block.
//!
//! The one deliberate divergence: when fuel runs out at the second or
//! third component of a superinstruction, the reported [`Trap::at`]
//! location is the superinstruction's *first* component (the trap kind,
//! counters, and heap state still match the tree engine exactly). Trap
//! locations of real machine faults are unaffected — fusion never spans
//! a trapping component boundary except after `aload`, whose fault is
//! the first component.

use sxe_ir::{eval, BlockId, FuncId, InstId, Target, TrapKind, Ty, UnOp};

use crate::cost::{
    bin_cost, un_cost, ALLOC_COST, ALU_COST, BRANCH_COST, CALL_COST, MEM_COST,
};
use crate::counters::{opidx, FlatCounters};
use crate::decode::{DecodedModule, Op, Simple, NO_REG};
use crate::error::Trap;
use crate::heap::Heap;
use crate::machine::{eval_cond, BlockHook, MAX_CALL_DEPTH};

/// Mutable run state of a decoded-engine VM, separated from the
/// (immutable once built) [`DecodedModule`] so the dispatch loop can
/// borrow both at once.
pub(crate) struct ExecState {
    pub heap: Heap,
    pub fuel: u64,
    pub flat: FlatCounters,
    pub profile: Option<Vec<Vec<u64>>>,
    pub hook: Option<BlockHook>,
    pub target: Target,
}

impl std::fmt::Debug for ExecState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecState")
            .field("fuel", &self.fuel)
            .field("target", &self.target)
            .finish_non_exhaustive()
    }
}

/// Block-entry bookkeeping: profile count and hook, in tree-engine
/// order.
#[inline]
fn enter_block(st: &mut ExecState, func: usize, block: u32, regs: &[i64]) {
    if let Some(p) = st.profile.as_mut() {
        p[func][block as usize] += 1;
    }
    if let Some(h) = st.hook.as_mut() {
        h(FuncId(func as u32), BlockId(block), regs);
    }
}

/// The three accumulators every single instruction touches, hoisted out
/// of [`ExecState`] into a stack local for the duration of a run.
///
/// Why: `st` is a caller-provided `&mut`, so every store through it must
/// be materialized in memory at each point the loop could unwind — the
/// optimizer cannot keep `st.fuel` in a register across the dispatch
/// loop, and the resulting load/store chains serialize the hot path. A
/// local that never escapes has no such obligation. [`run_decoded`]
/// loads these from `ExecState` at entry and stores them back on every
/// (non-panicking) exit path.
struct Hot {
    fuel: u64,
    insts: u64,
    cycles: u64,
}

/// Charge fuel and record one (component) instruction. `Err` means the
/// tank ran dry *before* this instruction — it is not recorded.
#[inline]
fn charge(hot: &mut Hot, flat: &mut FlatCounters, op: usize, cycles: u64) -> Result<(), TrapKind> {
    if hot.fuel == 0 {
        return Err(TrapKind::ResourceExhausted);
    }
    hot.fuel -= 1;
    hot.insts += 1;
    hot.cycles += cycles;
    flat.per_op[op] += 1;
    Ok(())
}

/// Batched charge for an `n`-component superinstruction none of whose
/// components can trap (other than on fuel): one fuel check and one
/// `insts`/`cycles` update instead of `n`. Returns `false` when fewer
/// than `n` fuel units remain — the caller must then take the exact
/// per-component path so the trap-on-empty point (and the counters at
/// that point) stay bit-identical with the tree engine.
#[inline(always)]
fn charge_batch(hot: &mut Hot, n: u64, cycles: u64) -> bool {
    if hot.fuel < n {
        return false;
    }
    hot.fuel -= n;
    hot.insts += n;
    hot.cycles += cycles;
    true
}

/// One micro-op whose fuel/insts/cycles were already charged in a
/// batch: bump only its mnemonic slot, then execute.
#[inline(always)]
fn exec_prepaid(st: &mut ExecState, regs: &mut [i64], s: Simple) {
    match s {
        Simple::Const { dst, value } => {
            st.flat.per_op[opidx::CONST] += 1;
            regs[dst as usize] = value;
        }
        Simple::Copy { dst, src } => {
            st.flat.per_op[opidx::COPY] += 1;
            regs[dst as usize] = regs[src as usize];
        }
        Simple::Un { op, ty, dst, src } => {
            st.flat.per_op[opidx::UN] += 1;
            regs[dst as usize] = eval_un(op, ty, regs[src as usize], st.target);
        }
        Simple::Bin { op, ty, dst, lhs, rhs } => {
            st.flat.per_op[opidx::BIN] += 1;
            // Non-trapping by construction (`fusable_bin`).
            regs[dst as usize] =
                eval::int_bin_on(op, regs[lhs as usize], regs[rhs as usize], ty, st.target)
                    .unwrap_or(0);
        }
        Simple::Setcc { cond, ty, dst, lhs, rhs } => {
            st.flat.per_op[opidx::SET] += 1;
            regs[dst as usize] =
                eval_cond(cond, ty, regs[lhs as usize], regs[rhs as usize]) as i64;
        }
        Simple::Extend { dst, src, from } => {
            st.flat.per_op[opidx::EXTEND] += 1;
            st.flat.note_extend(from);
            regs[dst as usize] = from.sign_extend(regs[src as usize]);
        }
        Simple::JustExt { dst, src } => {
            st.flat.per_op[opidx::JUSTEXT] += 1;
            regs[dst as usize] = regs[src as usize];
        }
    }
}

/// Unary-op evaluation, shared by the plain and paired paths.
#[inline(always)]
fn eval_un(op: UnOp, ty: Ty, v: i64, target: Target) -> i64 {
    match op {
        UnOp::Neg => match ty {
            Ty::F64 => (-f64::from_bits(v as u64)).to_bits() as i64,
            _ => eval::int_neg_on(v, ty, target),
        },
        UnOp::Not => !v,
        // Reads the FULL register: garbage upper bits produce a wrong
        // double — by design.
        UnOp::I32ToF64 | UnOp::I64ToF64 => (v as f64).to_bits() as i64,
        UnOp::F64ToI32 => eval::d2i(f64::from_bits(v as u64)),
        UnOp::F64ToI64 => eval::d2l(f64::from_bits(v as u64)),
        UnOp::Zext(w) => w.zero_extend(v),
        UnOp::FNeg => (-f64::from_bits(v as u64)).to_bits() as i64,
        UnOp::FSqrt => f64::from_bits(v as u64).sqrt().to_bits() as i64,
        UnOp::FAbs => f64::from_bits(v as u64).abs().to_bits() as i64,
    }
}

/// One component of an [`Op::Pair`]: charge, record, execute. These
/// micro-ops never trap on their own — only the fuel check can fail.
#[inline(always)]
fn exec_simple(
    hot: &mut Hot,
    st: &mut ExecState,
    regs: &mut [i64],
    s: Simple,
) -> Result<(), TrapKind> {
    match s {
        Simple::Const { dst, value } => {
            charge(hot, &mut st.flat, opidx::CONST, ALU_COST)?;
            regs[dst as usize] = value;
        }
        Simple::Copy { dst, src } => {
            charge(hot, &mut st.flat, opidx::COPY, ALU_COST)?;
            regs[dst as usize] = regs[src as usize];
        }
        Simple::Un { op, ty, dst, src } => {
            charge(hot, &mut st.flat, opidx::UN, un_cost(op))?;
            regs[dst as usize] = eval_un(op, ty, regs[src as usize], st.target);
        }
        Simple::Bin { op, ty, dst, lhs, rhs } => {
            charge(hot, &mut st.flat, opidx::BIN, bin_cost(op, ty))?;
            // Non-trapping by construction (`fusable_bin`).
            regs[dst as usize] =
                eval::int_bin_on(op, regs[lhs as usize], regs[rhs as usize], ty, st.target)
                    .unwrap_or(0);
        }
        Simple::Setcc { cond, ty, dst, lhs, rhs } => {
            charge(hot, &mut st.flat, opidx::SET, ALU_COST)?;
            regs[dst as usize] =
                eval_cond(cond, ty, regs[lhs as usize], regs[rhs as usize]) as i64;
        }
        Simple::Extend { dst, src, from } => {
            charge(hot, &mut st.flat, opidx::EXTEND, ALU_COST)?;
            st.flat.note_extend(from);
            regs[dst as usize] = from.sign_extend(regs[src as usize]);
        }
        Simple::JustExt { dst, src } => {
            charge(hot, &mut st.flat, opidx::JUSTEXT, 0)?;
            regs[dst as usize] = regs[src as usize];
        }
    }
    Ok(())
}

/// A suspended caller awaiting an inner call's return. Frames live on
/// the heap, not the native stack, so [`MAX_CALL_DEPTH`] is the only
/// recursion bound in play.
struct Frame {
    func: usize,
    /// Resume point: the op *after* the call.
    pc: usize,
    /// Caller register receiving the return value ([`NO_REG`] if none).
    ret_dst: u32,
    regs: Vec<i64>,
}

/// Execute `func` (already-canonicalized `args`) on the decoded module.
pub(crate) fn run_decoded(
    dm: &DecodedModule,
    st: &mut ExecState,
    func: usize,
    args: &[i64],
) -> Result<Option<i64>, Trap> {
    let mut hot = Hot { fuel: st.fuel, insts: st.flat.insts, cycles: st.flat.cycles };
    let result = dispatch(dm, st, &mut hot, func, args);
    st.fuel = hot.fuel;
    st.flat.insts = hot.insts;
    st.flat.cycles = hot.cycles;
    result
}

/// The dispatch loop proper. Reads and writes fuel/insts/cycles only
/// through `hot` — [`run_decoded`] owns the load/store-back protocol.
#[allow(clippy::too_many_lines)]
fn dispatch(
    dm: &DecodedModule,
    st: &mut ExecState,
    hot: &mut Hot,
    func: usize,
    args: &[i64],
) -> Result<Option<i64>, Trap> {
    let trap = |func: usize, kind: TrapKind, at: InstId| Trap {
        kind,
        func: FuncId(func as u32),
        func_name: dm.funcs[func].name.clone(),
        at,
    };
    let mut stack: Vec<Frame> = Vec::new();
    let mut func = func;
    let mut f = &dm.funcs[func];
    let mut regs = vec![0i64; f.reg_count];
    for (&(r, _), &v) in f.params.iter().zip(args) {
        regs[r as usize] = v;
    }
    enter_block(st, func, 0, &regs);
    let mut pc = 0usize;
    loop {
        match f.ops[pc] {
            Op::Const { dst, value } => {
                charge(hot, &mut st.flat, opidx::CONST, ALU_COST).map_err(|k| trap(func, k, f.ids[pc]))?;
                regs[dst as usize] = value;
            }
            Op::ConstF { dst, bits } => {
                charge(hot, &mut st.flat, opidx::CONSTF, ALU_COST).map_err(|k| trap(func, k, f.ids[pc]))?;
                regs[dst as usize] = bits;
            }
            Op::Copy { dst, src } => {
                charge(hot, &mut st.flat, opidx::COPY, ALU_COST).map_err(|k| trap(func, k, f.ids[pc]))?;
                regs[dst as usize] = regs[src as usize];
            }
            Op::Un { op, ty, dst, src } => {
                charge(hot, &mut st.flat, opidx::UN, un_cost(op)).map_err(|k| trap(func, k, f.ids[pc]))?;
                regs[dst as usize] = eval_un(op, ty, regs[src as usize], st.target);
            }
            Op::Bin { op, ty, dst, lhs, rhs } => {
                charge(hot, &mut st.flat, opidx::BIN, bin_cost(op, ty)).map_err(|k| trap(func, k, f.ids[pc]))?;
                let a = regs[lhs as usize];
                let b = regs[rhs as usize];
                regs[dst as usize] = match ty {
                    Ty::F64 => {
                        let (x, y) = (f64::from_bits(a as u64), f64::from_bits(b as u64));
                        match eval::f64_bin(op, x, y) {
                            Some(r) => r.to_bits() as i64,
                            // Bitwise float ops are rejected by
                            // construction; treat as raw int ops on the
                            // bits for robustness.
                            None => eval::int_bin(op, a, b, Ty::I64).unwrap_or(0),
                        }
                    }
                    _ => match eval::int_bin_on(op, a, b, ty, st.target) {
                        Some(v) => v,
                        None => return Err(trap(func, TrapKind::DivisionByZero, f.ids[pc])),
                    },
                };
            }
            Op::Setcc { cond, ty, dst, lhs, rhs } => {
                charge(hot, &mut st.flat, opidx::SET, ALU_COST).map_err(|k| trap(func, k, f.ids[pc]))?;
                let t = eval_cond(cond, ty, regs[lhs as usize], regs[rhs as usize]);
                regs[dst as usize] = t as i64;
            }
            Op::Extend { dst, src, from } => {
                charge(hot, &mut st.flat, opidx::EXTEND, ALU_COST).map_err(|k| trap(func, k, f.ids[pc]))?;
                st.flat.note_extend(from);
                regs[dst as usize] = from.sign_extend(regs[src as usize]);
            }
            // Semantically a register move; the assertion it carries is a
            // compiler-internal fact.
            Op::JustExt { dst, src } => {
                charge(hot, &mut st.flat, opidx::JUSTEXT, 0).map_err(|k| trap(func, k, f.ids[pc]))?;
                regs[dst as usize] = regs[src as usize];
            }
            Op::NewArray { dst, len, elem } => {
                charge(hot, &mut st.flat, opidx::NEWARRAY, ALLOC_COST).map_err(|k| trap(func, k, f.ids[pc]))?;
                // Length check is a 32-bit compare.
                let l32 = regs[len as usize] as i32;
                if l32 < 0 {
                    return Err(trap(func, TrapKind::NegativeArraySize, f.ids[pc]));
                }
                match st.heap.alloc(elem, l32 as u32) {
                    Some(r) => regs[dst as usize] = r,
                    None => return Err(trap(func, TrapKind::ResourceExhausted, f.ids[pc])),
                }
            }
            Op::ArrayLen { dst, array } => {
                charge(hot, &mut st.flat, opidx::LEN, ALU_COST).map_err(|k| trap(func, k, f.ids[pc]))?;
                let a = st
                    .heap
                    .get(regs[array as usize])
                    .ok_or_else(|| trap(func, TrapKind::WildAddress, f.ids[pc]))?;
                regs[dst as usize] = i64::from(a.len());
            }
            Op::Load { dst, array, index } => {
                charge(hot, &mut st.flat, opidx::ALOAD, MEM_COST).map_err(|k| trap(func, k, f.ids[pc]))?;
                regs[dst as usize] = st
                    .heap
                    .load_checked(regs[array as usize], regs[index as usize], st.target)
                    .map_err(|k| trap(func, k, f.ids[pc]))?;
            }
            Op::Store { array, index, src } => {
                charge(hot, &mut st.flat, opidx::ASTORE, MEM_COST).map_err(|k| trap(func, k, f.ids[pc]))?;
                st.heap
                    .store_checked(regs[array as usize], regs[index as usize], regs[src as usize])
                    .map_err(|k| trap(func, k, f.ids[pc]))?;
            }
            Op::Call { dst, callee, args_at, args_len } => {
                charge(hot, &mut st.flat, opidx::CALL, CALL_COST).map_err(|k| trap(func, k, f.ids[pc]))?;
                let callee = callee as usize;
                if stack.len() + 1 > MAX_CALL_DEPTH {
                    return Err(trap(
                        callee,
                        TrapKind::ResourceExhausted,
                        InstId::new(BlockId(0), 0),
                    ));
                }
                let g = &dm.funcs[callee];
                // Inner calls pass raw register values — canonicalization
                // is an entry-boundary convenience only, same as the tree
                // engine.
                let mut callee_regs = vec![0i64; g.reg_count];
                let arg_regs = &f.call_args[args_at as usize..(args_at + args_len) as usize];
                for (&(r, _), &a) in g.params.iter().zip(arg_regs) {
                    callee_regs[r as usize] = regs[a as usize];
                }
                stack.push(Frame {
                    func,
                    pc: pc + 1,
                    ret_dst: dst,
                    regs: std::mem::replace(&mut regs, callee_regs),
                });
                func = callee;
                f = g;
                enter_block(st, func, 0, &regs);
                pc = 0;
                continue;
            }
            Op::Br { pc: t, block } => {
                charge(hot, &mut st.flat, opidx::BR, BRANCH_COST).map_err(|k| trap(func, k, f.ids[pc]))?;
                pc = t as usize;
                enter_block(st, func, block, &regs);
                continue;
            }
            Op::CondBr { cond, ty, lhs, rhs, then_pc, then_block, else_pc, else_block } => {
                charge(hot, &mut st.flat, opidx::CONDBR, BRANCH_COST).map_err(|k| trap(func, k, f.ids[pc]))?;
                let t = eval_cond(cond, ty, regs[lhs as usize], regs[rhs as usize]);
                let (p, b) = if t { (then_pc, then_block) } else { (else_pc, else_block) };
                pc = p as usize;
                enter_block(st, func, b, &regs);
                continue;
            }
            Op::Ret { src } => {
                charge(hot, &mut st.flat, opidx::RET, BRANCH_COST).map_err(|k| trap(func, k, f.ids[pc]))?;
                let ret = if src == NO_REG { None } else { Some(regs[src as usize]) };
                let Some(fr) = stack.pop() else { return Ok(ret) };
                func = fr.func;
                f = &dm.funcs[func];
                regs = fr.regs;
                pc = fr.pc;
                if fr.ret_dst != NO_REG {
                    regs[fr.ret_dst as usize] = ret.unwrap_or(0);
                }
                continue;
            }
            Op::BinExt { op, ty, dst, lhs, rhs, ext_dst, from } => {
                let c = bin_cost(op, ty);
                let v = eval::int_bin_on(op, regs[lhs as usize], regs[rhs as usize], ty, st.target)
                    .unwrap_or(0); // non-trapping by decode
                if charge_batch(hot, 2, c + ALU_COST) {
                    st.flat.per_op[opidx::BIN] += 1;
                    st.flat.per_op[opidx::EXTEND] += 1;
                } else {
                    let at = f.ids[pc];
                    charge(hot, &mut st.flat, opidx::BIN, c).map_err(|k| trap(func, k, at))?;
                    regs[dst as usize] = v;
                    charge(hot, &mut st.flat, opidx::EXTEND, ALU_COST).map_err(|k| trap(func, k, at))?;
                }
                st.flat.note_extend(from);
                regs[dst as usize] = v;
                regs[ext_dst as usize] = from.sign_extend(v);
            }
            Op::SetccExt { cond, ty, dst, lhs, rhs, ext_dst, from } => {
                let t = eval_cond(cond, ty, regs[lhs as usize], regs[rhs as usize]) as i64;
                if charge_batch(hot, 2, ALU_COST + ALU_COST) {
                    st.flat.per_op[opidx::SET] += 1;
                    st.flat.per_op[opidx::EXTEND] += 1;
                } else {
                    let at = f.ids[pc];
                    charge(hot, &mut st.flat, opidx::SET, ALU_COST).map_err(|k| trap(func, k, at))?;
                    regs[dst as usize] = t;
                    charge(hot, &mut st.flat, opidx::EXTEND, ALU_COST).map_err(|k| trap(func, k, at))?;
                }
                st.flat.note_extend(from);
                regs[dst as usize] = t;
                regs[ext_dst as usize] = from.sign_extend(t);
            }
            Op::LoadExt { dst, array, index, ext_dst, from } => {
                let at = f.ids[pc];
                charge(hot, &mut st.flat, opidx::ALOAD, MEM_COST).map_err(|k| trap(func, k, at))?;
                let v = st
                    .heap
                    .load_checked(regs[array as usize], regs[index as usize], st.target)
                    .map_err(|k| trap(func, k, at))?;
                regs[dst as usize] = v;
                charge(hot, &mut st.flat, opidx::EXTEND, ALU_COST).map_err(|k| trap(func, k, at))?;
                st.flat.note_extend(from);
                regs[ext_dst as usize] = from.sign_extend(v);
            }
            Op::BinExtBr {
                op,
                ty,
                dst,
                lhs,
                rhs,
                ext_dst,
                from,
                cond,
                cty,
                clhs,
                crhs,
                then_pc,
                then_block,
                else_pc,
                else_block,
            } => {
                let c = bin_cost(op, ty);
                let v = eval::int_bin_on(op, regs[lhs as usize], regs[rhs as usize], ty, st.target)
                    .unwrap_or(0); // non-trapping by decode
                if charge_batch(hot, 3, c + ALU_COST + BRANCH_COST) {
                    st.flat.per_op[opidx::BIN] += 1;
                    st.flat.per_op[opidx::EXTEND] += 1;
                    st.flat.per_op[opidx::CONDBR] += 1;
                } else {
                    let at = f.ids[pc];
                    charge(hot, &mut st.flat, opidx::BIN, c).map_err(|k| trap(func, k, at))?;
                    regs[dst as usize] = v;
                    charge(hot, &mut st.flat, opidx::EXTEND, ALU_COST).map_err(|k| trap(func, k, at))?;
                    st.flat.note_extend(from);
                    regs[ext_dst as usize] = from.sign_extend(v);
                    charge(hot, &mut st.flat, opidx::CONDBR, BRANCH_COST).map_err(|k| trap(func, k, at))?;
                    unreachable!("fuel < 3 cannot satisfy three charges");
                }
                st.flat.note_extend(from);
                regs[dst as usize] = v;
                regs[ext_dst as usize] = from.sign_extend(v);
                let t = eval_cond(cond, cty, regs[clhs as usize], regs[crhs as usize]);
                let (p, blk) = if t { (then_pc, then_block) } else { (else_pc, else_block) };
                pc = p as usize;
                enter_block(st, func, blk, &regs);
                continue;
            }
            Op::Pair { a, b, cost } => {
                if charge_batch(hot, 2, u64::from(cost)) {
                    exec_prepaid(st, &mut regs, a);
                    exec_prepaid(st, &mut regs, b);
                } else {
                    let at = f.ids[pc];
                    exec_simple(hot, st, &mut regs, a).map_err(|k| trap(func, k, at))?;
                    exec_simple(hot, st, &mut regs, b).map_err(|k| trap(func, k, at))?;
                }
            }
            Op::Triple { a, b, c, cost } => {
                if charge_batch(hot, 3, u64::from(cost)) {
                    exec_prepaid(st, &mut regs, a);
                    exec_prepaid(st, &mut regs, b);
                    exec_prepaid(st, &mut regs, c);
                } else {
                    let at = f.ids[pc];
                    exec_simple(hot, st, &mut regs, a).map_err(|k| trap(func, k, at))?;
                    exec_simple(hot, st, &mut regs, b).map_err(|k| trap(func, k, at))?;
                    exec_simple(hot, st, &mut regs, c).map_err(|k| trap(func, k, at))?;
                }
            }
            Op::PairBr { a, target_pc, block, cost } => {
                if charge_batch(hot, 2, u64::from(cost)) {
                    exec_prepaid(st, &mut regs, a);
                    st.flat.per_op[opidx::BR] += 1;
                } else {
                    let at = f.ids[pc];
                    exec_simple(hot, st, &mut regs, a).map_err(|k| trap(func, k, at))?;
                    charge(hot, &mut st.flat, opidx::BR, BRANCH_COST).map_err(|k| trap(func, k, at))?;
                }
                pc = target_pc as usize;
                enter_block(st, func, block, &regs);
                continue;
            }
            Op::PairCondBr {
                a, cond, ty, lhs, rhs, then_pc, then_block, else_pc, else_block, cost
            } => {
                if charge_batch(hot, 2, u64::from(cost)) {
                    exec_prepaid(st, &mut regs, a);
                    st.flat.per_op[opidx::CONDBR] += 1;
                } else {
                    let at = f.ids[pc];
                    exec_simple(hot, st, &mut regs, a).map_err(|k| trap(func, k, at))?;
                    charge(hot, &mut st.flat, opidx::CONDBR, BRANCH_COST).map_err(|k| trap(func, k, at))?;
                }
                let t = eval_cond(cond, ty, regs[lhs as usize], regs[rhs as usize]);
                let (p, b) = if t { (then_pc, then_block) } else { (else_pc, else_block) };
                pc = p as usize;
                enter_block(st, func, b, &regs);
                continue;
            }
            Op::NoTerm => {
                panic!("block must end in a terminator");
            }
        }
        pc += 1;
    }
}
