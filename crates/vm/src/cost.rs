//! A simple in-order cycle cost model, used to estimate the run-time
//! effect of sign-extension elimination (paper Figures 13–14).
//!
//! The paper measured wall-clock speedup on an 800 MHz Itanium. We model
//! that machine's *relative* latencies: the absolute numbers do not
//! matter, only that removing `sxt4` instructions from dependence chains
//! in hot loops shortens execution proportionally to their dynamic count.

use sxe_ir::{BinOp, Inst, Ty, UnOp};

/// Cost in cycle units of one executed instruction. An ALU op is
/// [`ALU_COST`] units.
#[must_use]
pub fn cost_of(inst: &Inst) -> u64 {
    match inst {
        Inst::Nop => 0,
        // sxt4 is a plain ALU op — its cost is occupancy in the
        // dependence chain, which is exactly what elimination removes.
        Inst::Extend { .. } => ALU_COST,
        Inst::JustExtended { .. } => 0, // pseudo-instruction
        Inst::Const { .. } | Inst::ConstF { .. } | Inst::Copy { .. } => ALU_COST,
        Inst::Un { op, .. } => un_cost(*op),
        Inst::Bin { op, ty, .. } => bin_cost(*op, *ty),
        Inst::Setcc { .. } => ALU_COST,
        Inst::NewArray { .. } => ALLOC_COST,
        Inst::ArrayLen { .. } => ALU_COST,
        // Bounds check (compare + branch) + address arithmetic + access.
        Inst::ArrayLoad { .. } => MEM_COST,
        Inst::ArrayStore { .. } => MEM_COST,
        Inst::Call { .. } => CALL_COST,
        Inst::Br { .. } => BRANCH_COST,
        Inst::CondBr { .. } => BRANCH_COST,
        Inst::Ret { .. } => BRANCH_COST,
    }
}

/// Cost of a unary operation (shared by [`cost_of`] and the decoded
/// engine, which dispatches on pre-decoded ops rather than [`Inst`]s).
#[must_use]
pub fn un_cost(op: UnOp) -> u64 {
    match op {
        UnOp::Neg | UnOp::Not | UnOp::Zext(_) => ALU_COST,
        UnOp::I32ToF64 | UnOp::I64ToF64 | UnOp::F64ToI32 | UnOp::F64ToI64 => FP_CONV_COST,
        UnOp::FNeg | UnOp::FAbs => FP_COST,
        UnOp::FSqrt => FP_SQRT_COST,
    }
}

/// Cost of a binary operation (shared by [`cost_of`] and the decoded
/// engine).
#[must_use]
pub fn bin_cost(op: BinOp, ty: Ty) -> u64 {
    match (op, ty) {
        (BinOp::Div | BinOp::Rem, Ty::F64) => FP_DIV_COST,
        (BinOp::Div | BinOp::Rem, _) => INT_DIV_COST,
        (_, Ty::F64) => FP_COST,
        (BinOp::Mul, _) => MUL_COST,
        _ => ALU_COST,
    }
}

/// Single-cycle ALU operation (add, and, sxt4, …).
pub const ALU_COST: u64 = 10;
/// Integer multiply.
pub const MUL_COST: u64 = 30;
/// Integer divide (software sequence on Itanium: very expensive).
pub const INT_DIV_COST: u64 = 360;
/// Float arithmetic.
pub const FP_COST: u64 = 40;
/// Float divide.
pub const FP_DIV_COST: u64 = 320;
/// Float square root.
pub const FP_SQRT_COST: u64 = 320;
/// Int/float conversions.
pub const FP_CONV_COST: u64 = 60;
/// Array load/store including bounds check and address computation.
pub const MEM_COST: u64 = 25;
/// Branch (predicted-taken average).
pub const BRANCH_COST: u64 = 12;
/// Call/return linkage overhead.
pub const CALL_COST: u64 = 60;
/// Array allocation (per call, excluding per-element zeroing).
pub const ALLOC_COST: u64 = 200;

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{Reg, Width};

    #[test]
    fn extend_costs_one_alu_slot() {
        let e = Inst::Extend { dst: Reg(0), src: Reg(0), from: Width::W32 };
        assert_eq!(cost_of(&e), ALU_COST);
        let d = Inst::JustExtended { dst: Reg(0), src: Reg(0), from: Width::W32 };
        assert_eq!(cost_of(&d), 0);
    }

    #[test]
    fn relative_order() {
        let add = Inst::Bin { op: BinOp::Add, ty: Ty::I32, dst: Reg(0), lhs: Reg(0), rhs: Reg(0) };
        let div = Inst::Bin { op: BinOp::Div, ty: Ty::I32, dst: Reg(0), lhs: Reg(0), rhs: Reg(0) };
        let fadd = Inst::Bin { op: BinOp::Add, ty: Ty::F64, dst: Reg(0), lhs: Reg(0), rhs: Reg(0) };
        assert!(cost_of(&add) < cost_of(&fadd));
        assert!(cost_of(&fadd) < cost_of(&div));
    }
}
