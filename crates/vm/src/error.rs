//! VM execution errors.

use std::fmt;

use sxe_ir::{FuncId, InstId, TrapKind};

/// A run-time trap, with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trap {
    /// What went wrong.
    pub kind: TrapKind,
    /// Function in which the trap occurred.
    pub func: FuncId,
    /// Name of that function, for human-readable reports.
    pub func_name: String,
    /// Instruction that trapped.
    pub at: InstId,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trap in @{} ({}) at {}: {}", self.func_name, self.func, self.at, self.kind)
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::BlockId;

    #[test]
    fn display_mentions_kind() {
        let t = Trap {
            kind: TrapKind::IndexOutOfBounds,
            func: FuncId(0),
            func_name: "main".into(),
            at: InstId::new(BlockId(2), 5),
        };
        let s = t.to_string();
        assert!(s.contains("index out of bounds"));
        assert!(s.contains("b2:5"));
        assert!(s.contains("@main"));
    }
}
