//! Differential oracle: execute two modules that are supposed to be
//! semantically identical — typically the conversion-only (baseline)
//! compile of a module and its fully optimized compile — on
//! deterministic pseudo-random inputs and compare every observable
//! outcome. (The *raw* 32-bit input module is only a valid reference
//! when it never lets a narrow value reach a 64-bit operation: on the
//! 64-bit machine model its upper bits are garbage until step 1 inserts
//! the sign extensions.)
//!
//! This is the last line of defense behind the compile pipeline's
//! verification gates: a gate proves structural well-formedness, the
//! oracle checks *behavior*. The fault-injection (chaos) suite runs it
//! after every injected-fault recovery to prove rollback never ships a
//! miscompiled module.
//!
//! Comparison rules:
//! * both runs complete → return value (truncated to the declared return
//!   width — upper bits of a narrow result are garbage under the machine
//!   model) **and** heap checksum must match;
//! * both runs trap → the [`TrapKind`]s must match (the trap *location*
//!   is never compared — eliminating extensions legitimately moves it);
//! * either run traps [`TrapKind::ResourceExhausted`] → the comparison is
//!   skipped: the two modules execute different instruction counts by
//!   design, so fuel runs out at different points.

use sxe_ir::rng::XorShift;
use sxe_ir::{Module, Target, TrapKind, Ty};

use crate::vm::{Engine, Vm, VmError};

/// Configuration for one oracle sweep.
///
/// `#[non_exhaustive]` with builder-style setters, so growing a new knob
/// (as [`OracleConfig::engine`] did) is never a breaking change:
///
/// ```
/// use sxe_vm::{Engine, OracleConfig};
/// let config = OracleConfig::new().runs(8).fuel(500_000).engine(Engine::Tree);
/// assert_eq!(config.runs, 8);
/// ```
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct OracleConfig {
    /// Pseudo-random argument sets per function.
    pub runs: usize,
    /// Interpreter fuel per run (both sides get the same tank).
    pub fuel: u64,
    /// Seed for the argument generator.
    pub seed: u64,
    /// Engine both sides execute on (decoded by default — the sweep's
    /// throughput comes from decoding each module once and resetting the
    /// VM between runs).
    pub engine: Engine,
    /// Engine for the *right* side only, overriding [`OracleConfig::engine`]
    /// when set. This turns the oracle into a cross-engine differential
    /// harness — e.g. decoded on the left, [`Engine::Native`] on the
    /// right — reusing the same comparison and replay machinery.
    pub engine_right: Option<Engine>,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig {
            runs: 16,
            fuel: 2_000_000,
            seed: 0xd1ff_5eed,
            engine: Engine::Decoded,
            engine_right: None,
        }
    }
}

impl OracleConfig {
    /// The default configuration (alias of [`OracleConfig::default`],
    /// reads better at the head of a builder chain).
    #[must_use]
    pub fn new() -> OracleConfig {
        OracleConfig::default()
    }

    /// Set the number of argument sets per function.
    #[must_use]
    pub fn runs(mut self, runs: usize) -> OracleConfig {
        self.runs = runs;
        self
    }

    /// Set the per-run fuel tank.
    #[must_use]
    pub fn fuel(mut self, fuel: u64) -> OracleConfig {
        self.fuel = fuel;
        self
    }

    /// Set the argument-generator seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> OracleConfig {
        self.seed = seed;
        self
    }

    /// Set the execution engine.
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> OracleConfig {
        self.engine = engine;
        self
    }

    /// Set a different engine for the right side only (cross-engine
    /// differential mode).
    #[must_use]
    pub fn engine_right(mut self, engine: Engine) -> OracleConfig {
        self.engine_right = Some(engine);
        self
    }
}

/// A behavioral divergence found by the oracle.
///
/// Carries the oracle seed and run index the diverging argument set was
/// derived from, so the single divergent run can be replayed standalone
/// with [`differential_replay`] — no need to re-run the whole sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Function that diverged.
    pub function: String,
    /// Arguments it was called with.
    pub args: Vec<i64>,
    /// Outcome on the left (original) module.
    pub left: String,
    /// Outcome on the right (compiled) module.
    pub right: String,
    /// Oracle seed ([`OracleConfig::seed`]) the sweep ran under.
    pub seed: u64,
    /// Zero-based run index within this function's sweep.
    pub run: usize,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "@{}({:?}): left = {}, right = {} [oracle seed {:#x} run {}]",
            self.function, self.args, self.left, self.right, self.seed, self.run
        )
    }
}

enum RunResult {
    Done { ret: Option<i64>, heap: u64 },
    Trapped(TrapKind),
}

impl RunResult {
    fn describe(&self) -> String {
        match self {
            RunResult::Done { ret, heap } => format!("ret={ret:?} heap={heap:#x}"),
            RunResult::Trapped(kind) => format!("trap({kind})"),
        }
    }
}

/// Truncate a returned value to the function's declared return width.
/// Under the machine model the upper bits of a narrow result are garbage;
/// an unconverted module and its compiled form legitimately disagree on
/// them, so only the declared bits are observable.
fn canonical_ret(ret: Option<i64>, ty: Option<Ty>) -> Option<i64> {
    match (ret, ty) {
        (Some(v), Some(Ty::I8)) => Some(i64::from(v as i8)),
        (Some(v), Some(Ty::I16)) => Some(i64::from(v as i16)),
        (Some(v), Some(Ty::I32)) => Some(i64::from(v as i32)),
        _ => ret,
    }
}

/// Build one side's VM for a sweep: decode (for the decoded engine)
/// happens here, once; every run then goes through [`Vm::reset`].
fn sweep_vm<'m>(m: &'m Module, target: Target, config: &OracleConfig, right: bool) -> Vm<'m> {
    let engine = if right { config.engine_right.unwrap_or(config.engine) } else { config.engine };
    Vm::builder(m).target(target).engine(engine).fuel(config.fuel).build()
}

fn run_once(vm: &mut Vm, name: &str, args: &[i64], ret_ty: Option<Ty>) -> RunResult {
    vm.reset();
    match vm.run(name, args) {
        Ok(out) => {
            RunResult::Done { ret: canonical_ret(out.ret, ret_ty), heap: out.heap_checksum }
        }
        Err(VmError::Trap(trap)) => RunResult::Trapped(trap.kind),
        Err(e) => unreachable!("oracle pre-checks name and arity: {e}"),
    }
}

/// Small-biased argument sampling: array-shaped workloads want small
/// non-negative sizes most of the time, with the occasional negative or
/// boundary value to exercise the trap paths.
fn sample_arg(rng: &mut XorShift) -> i64 {
    match rng.below(8) {
        0 => 0,
        1 => -1,
        2 => rng.range_i64(-8, 8),
        _ => rng.range_i64(0, 48),
    }
}

/// FNV-1a over a function name, for deriving its argument stream.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The deterministic argument set the oracle uses for (`function`,
/// `run`) under `config.seed`. Derivable without replaying any earlier
/// function or run — this is what makes a [`Mismatch`] (which carries
/// `seed` and `run`) a standalone reproducer.
#[must_use]
pub fn oracle_args(config: &OracleConfig, function: &str, arity: usize, run: usize) -> Vec<i64> {
    let mut rng = XorShift::new(
        config.seed
            ^ fnv1a(function)
            ^ (run as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    (0..arity).map(|_| sample_arg(&mut rng)).collect()
}

/// Did one `(function, run)` comparison agree, or was it skipped?
enum RunVerdict {
    Agree,
    Skipped,
}

/// Run one `(function, run)` comparison; `lf` comes from the left
/// module (`lvm`'s).
fn compare_one(
    lvm: &mut Vm,
    rvm: &mut Vm,
    config: &OracleConfig,
    lf: &sxe_ir::Function,
    run: usize,
) -> Result<RunVerdict, Mismatch> {
    let args = oracle_args(config, &lf.name, lf.params.len(), run);
    let l = run_once(lvm, &lf.name, &args, lf.ret);
    let r = run_once(rvm, &lf.name, &args, lf.ret);
    if matches!(l, RunResult::Trapped(TrapKind::ResourceExhausted))
        || matches!(r, RunResult::Trapped(TrapKind::ResourceExhausted))
    {
        return Ok(RunVerdict::Skipped);
    }
    let agree = match (&l, &r) {
        (RunResult::Done { ret: lr, heap: lh }, RunResult::Done { ret: rr, heap: rh }) => {
            lr == rr && lh == rh
        }
        (RunResult::Trapped(lk), RunResult::Trapped(rk)) => lk == rk,
        _ => false,
    };
    if agree {
        Ok(RunVerdict::Agree)
    } else {
        Err(Mismatch {
            function: lf.name.clone(),
            args,
            left: l.describe(),
            right: r.describe(),
            seed: config.seed,
            run,
        })
    }
}

/// Compare `left` (reference) and `right` (optimized) on every function
/// both modules share by name, over `config.runs` deterministic argument
/// sets each. Argument sets are derived per `(function, run)` — not from
/// one rolling stream — so any single run replays standalone via
/// [`differential_replay`].
///
/// Returns the number of comparisons actually performed (skipped
/// resource-exhausted runs do not count).
///
/// # Errors
/// The first [`Mismatch`] found.
pub fn differential_check(
    left: &Module,
    right: &Module,
    target: Target,
    config: &OracleConfig,
) -> Result<usize, Mismatch> {
    let mut lvm = sweep_vm(left, target, config, false);
    let mut rvm = sweep_vm(right, target, config, true);
    let mut compared = 0;
    for (_, lf) in left.iter() {
        let Some(rid) = right.function_by_name(&lf.name) else { continue };
        if right.function(rid).params.len() != lf.params.len() {
            continue;
        }
        for run in 0..config.runs {
            if matches!(
                compare_one(&mut lvm, &mut rvm, config, lf, run)?,
                RunVerdict::Agree
            ) {
                compared += 1;
            }
        }
    }
    Ok(compared)
}

/// Replay one `(function, run)` comparison from an earlier sweep, as
/// carried by [`Mismatch::seed`] / [`Mismatch::run`] (put the seed back
/// into `config.seed`).
///
/// Returns `Ok(true)` when the comparison ran and agreed, `Ok(false)`
/// when it was skipped (unknown function, arity mismatch, or resource
/// exhaustion on either side).
///
/// # Errors
/// The reproduced [`Mismatch`].
pub fn differential_replay(
    left: &Module,
    right: &Module,
    target: Target,
    config: &OracleConfig,
    function: &str,
    run: usize,
) -> Result<bool, Mismatch> {
    let Some(lid) = left.function_by_name(function) else { return Ok(false) };
    let lf = left.function(lid);
    let Some(rid) = right.function_by_name(function) else { return Ok(false) };
    if right.function(rid).params.len() != lf.params.len() {
        return Ok(false);
    }
    let mut lvm = sweep_vm(left, target, config, false);
    let mut rvm = sweep_vm(right, target, config, true);
    match compare_one(&mut lvm, &mut rvm, config, lf, run)? {
        RunVerdict::Agree => Ok(true),
        RunVerdict::Skipped => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::parse_module;

    const GOOD: &str = "\
func @main(i32) -> i32 {
b0:
    r1 = const.i32 3
    r2 = mul.i32 r0, r1
    ret r2
}
";

    #[test]
    fn identical_modules_agree() {
        let m = parse_module(GOOD).unwrap();
        let n = differential_check(&m, &m.clone(), Target::Ia64, &OracleConfig::default())
            .expect("no mismatch");
        assert!(n > 0);
    }

    #[test]
    fn a_miscompile_is_caught() {
        let left = parse_module(GOOD).unwrap();
        // "Optimized" module that multiplies by 4 instead of 3.
        let right = parse_module(&GOOD.replace("const.i32 3", "const.i32 4")).unwrap();
        let err = differential_check(&left, &right, Target::Ia64, &OracleConfig::default())
            .expect_err("must diverge");
        assert_eq!(err.function, "main");
    }

    #[test]
    fn trap_kind_divergence_is_caught() {
        let left = parse_module(
            "func @main(i32) -> i32 {\n\
             b0:\n    r1 = newarray.i32 r0\n    r2 = const.i32 0\n    r3 = aload.i32 r1, r2\n    ret r3\n}\n",
        )
        .unwrap();
        // Drops the allocation: wild address instead of index trap.
        let right = parse_module(
            "func @main(i32) -> i32 {\n\
             b0:\n    r2 = const.i32 0\n    r3 = aload.i32 r2, r2\n    ret r3\n}\n",
        )
        .unwrap();
        let err = differential_check(&left, &right, Target::Ia64, &OracleConfig::default())
            .expect_err("must diverge");
        assert!(err.left != err.right);
    }

    #[test]
    fn a_mismatch_replays_standalone() {
        let left = parse_module(GOOD).unwrap();
        let right = parse_module(&GOOD.replace("const.i32 3", "const.i32 4")).unwrap();
        let config = OracleConfig::default();
        let err = differential_check(&left, &right, Target::Ia64, &config)
            .expect_err("must diverge");
        assert_eq!(err.seed, config.seed);
        // Replaying exactly (function, run) reproduces the same mismatch
        // without re-running the rest of the sweep.
        let replayed =
            differential_replay(&left, &right, Target::Ia64, &config, &err.function, err.run)
                .expect_err("replay must reproduce the divergence");
        assert_eq!(replayed, err);
        // And the argument derivation is position-independent.
        assert_eq!(oracle_args(&config, &err.function, err.args.len(), err.run), err.args);
    }

    #[test]
    fn replay_of_agreeing_run_is_ok() {
        let m = parse_module(GOOD).unwrap();
        let config = OracleConfig::default();
        assert_eq!(
            differential_replay(&m, &m.clone(), Target::Ia64, &config, "main", 0),
            Ok(true)
        );
        assert_eq!(
            differential_replay(&m, &m.clone(), Target::Ia64, &config, "nope", 0),
            Ok(false)
        );
    }

    #[test]
    fn engines_agree_in_the_oracle() {
        let m = parse_module(GOOD).unwrap();
        let decoded = differential_check(
            &m,
            &m.clone(),
            Target::Ia64,
            &OracleConfig::new().engine(Engine::Decoded),
        );
        let tree = differential_check(
            &m,
            &m.clone(),
            Target::Ia64,
            &OracleConfig::new().engine(Engine::Tree),
        );
        assert_eq!(decoded, tree);
        assert!(decoded.is_ok_and(|n| n > 0));
    }

    #[test]
    fn cross_engine_mode_runs_native_on_the_right() {
        let m = parse_module(GOOD).unwrap();
        let config = OracleConfig::new().engine_right(Engine::Native);
        let n = differential_check(&m, &m.clone(), Target::Ia64, &config)
            .expect("decoded and native must agree");
        assert!(n > 0);
        // A genuine miscompile is still caught across engines.
        let bad = parse_module(&GOOD.replace("const.i32 3", "const.i32 4")).unwrap();
        assert!(differential_check(&m, &bad, Target::Ia64, &config).is_err());
    }

    #[test]
    fn deterministic_across_calls() {
        let m = parse_module(GOOD).unwrap();
        let a = differential_check(&m, &m.clone(), Target::Ia64, &OracleConfig::default());
        let b = differential_check(&m, &m.clone(), Target::Ia64, &OracleConfig::default());
        assert_eq!(a, b);
    }
}
