//! Differential oracle: execute two modules that are supposed to be
//! semantically identical — typically the conversion-only (baseline)
//! compile of a module and its fully optimized compile — on
//! deterministic pseudo-random inputs and compare every observable
//! outcome. (The *raw* 32-bit input module is only a valid reference
//! when it never lets a narrow value reach a 64-bit operation: on the
//! 64-bit machine model its upper bits are garbage until step 1 inserts
//! the sign extensions.)
//!
//! This is the last line of defense behind the compile pipeline's
//! verification gates: a gate proves structural well-formedness, the
//! oracle checks *behavior*. The fault-injection (chaos) suite runs it
//! after every injected-fault recovery to prove rollback never ships a
//! miscompiled module.
//!
//! Comparison rules:
//! * both runs complete → return value (truncated to the declared return
//!   width — upper bits of a narrow result are garbage under the machine
//!   model) **and** heap checksum must match;
//! * both runs trap → the [`TrapKind`]s must match (the trap *location*
//!   is never compared — eliminating extensions legitimately moves it);
//! * either run traps [`TrapKind::ResourceExhausted`] → the comparison is
//!   skipped: the two modules execute different instruction counts by
//!   design, so fuel runs out at different points.

use sxe_ir::rng::XorShift;
use sxe_ir::{Module, Target, TrapKind, Ty};

use crate::machine::Machine;

/// Configuration for one oracle sweep.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Pseudo-random argument sets per function.
    pub runs: usize,
    /// Interpreter fuel per run (both sides get the same tank).
    pub fuel: u64,
    /// Seed for the argument generator.
    pub seed: u64,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig { runs: 16, fuel: 2_000_000, seed: 0xd1ff_5eed }
    }
}

/// A behavioral divergence found by the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Function that diverged.
    pub function: String,
    /// Arguments it was called with.
    pub args: Vec<i64>,
    /// Outcome on the left (original) module.
    pub left: String,
    /// Outcome on the right (compiled) module.
    pub right: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "@{}({:?}): left = {}, right = {}",
            self.function, self.args, self.left, self.right
        )
    }
}

enum RunResult {
    Done { ret: Option<i64>, heap: u64 },
    Trapped(TrapKind),
}

impl RunResult {
    fn describe(&self) -> String {
        match self {
            RunResult::Done { ret, heap } => format!("ret={ret:?} heap={heap:#x}"),
            RunResult::Trapped(kind) => format!("trap({kind})"),
        }
    }
}

/// Truncate a returned value to the function's declared return width.
/// Under the machine model the upper bits of a narrow result are garbage;
/// an unconverted module and its compiled form legitimately disagree on
/// them, so only the declared bits are observable.
fn canonical_ret(ret: Option<i64>, ty: Option<Ty>) -> Option<i64> {
    match (ret, ty) {
        (Some(v), Some(Ty::I8)) => Some(i64::from(v as i8)),
        (Some(v), Some(Ty::I16)) => Some(i64::from(v as i16)),
        (Some(v), Some(Ty::I32)) => Some(i64::from(v as i32)),
        _ => ret,
    }
}

fn run_once(
    m: &Module,
    target: Target,
    name: &str,
    args: &[i64],
    ret_ty: Option<Ty>,
    fuel: u64,
) -> RunResult {
    let mut vm = Machine::new(m, target);
    vm.set_fuel(fuel);
    match vm.run(name, args) {
        Ok(out) => {
            RunResult::Done { ret: canonical_ret(out.ret, ret_ty), heap: out.heap_checksum }
        }
        Err(trap) => RunResult::Trapped(trap.kind),
    }
}

/// Small-biased argument sampling: array-shaped workloads want small
/// non-negative sizes most of the time, with the occasional negative or
/// boundary value to exercise the trap paths.
fn sample_arg(rng: &mut XorShift) -> i64 {
    match rng.below(8) {
        0 => 0,
        1 => -1,
        2 => rng.range_i64(-8, 8),
        _ => rng.range_i64(0, 48),
    }
}

/// Compare `left` (reference) and `right` (optimized) on every function
/// both modules share by name, over `config.runs` deterministic argument
/// sets each.
///
/// Returns the number of comparisons actually performed (skipped
/// resource-exhausted runs do not count).
///
/// # Errors
/// The first [`Mismatch`] found.
pub fn differential_check(
    left: &Module,
    right: &Module,
    target: Target,
    config: &OracleConfig,
) -> Result<usize, Mismatch> {
    let mut rng = XorShift::new(config.seed);
    let mut compared = 0;
    for (_, lf) in left.iter() {
        let Some(rid) = right.function_by_name(&lf.name) else { continue };
        if right.function(rid).params.len() != lf.params.len() {
            continue;
        }
        for _ in 0..config.runs {
            let args: Vec<i64> = lf.params.iter().map(|_| sample_arg(&mut rng)).collect();
            let l = run_once(left, target, &lf.name, &args, lf.ret, config.fuel);
            let r = run_once(right, target, &lf.name, &args, lf.ret, config.fuel);
            if matches!(l, RunResult::Trapped(TrapKind::ResourceExhausted))
                || matches!(r, RunResult::Trapped(TrapKind::ResourceExhausted))
            {
                continue;
            }
            let agree = match (&l, &r) {
                (
                    RunResult::Done { ret: lr, heap: lh },
                    RunResult::Done { ret: rr, heap: rh },
                ) => lr == rr && lh == rh,
                (RunResult::Trapped(lk), RunResult::Trapped(rk)) => lk == rk,
                _ => false,
            };
            if !agree {
                return Err(Mismatch {
                    function: lf.name.clone(),
                    args,
                    left: l.describe(),
                    right: r.describe(),
                });
            }
            compared += 1;
        }
    }
    Ok(compared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::parse_module;

    const GOOD: &str = "\
func @main(i32) -> i32 {
b0:
    r1 = const.i32 3
    r2 = mul.i32 r0, r1
    ret r2
}
";

    #[test]
    fn identical_modules_agree() {
        let m = parse_module(GOOD).unwrap();
        let n = differential_check(&m, &m.clone(), Target::Ia64, &OracleConfig::default())
            .expect("no mismatch");
        assert!(n > 0);
    }

    #[test]
    fn a_miscompile_is_caught() {
        let left = parse_module(GOOD).unwrap();
        // "Optimized" module that multiplies by 4 instead of 3.
        let right = parse_module(&GOOD.replace("const.i32 3", "const.i32 4")).unwrap();
        let err = differential_check(&left, &right, Target::Ia64, &OracleConfig::default())
            .expect_err("must diverge");
        assert_eq!(err.function, "main");
    }

    #[test]
    fn trap_kind_divergence_is_caught() {
        let left = parse_module(
            "func @main(i32) -> i32 {\n\
             b0:\n    r1 = newarray.i32 r0\n    r2 = const.i32 0\n    r3 = aload.i32 r1, r2\n    ret r3\n}\n",
        )
        .unwrap();
        // Drops the allocation: wild address instead of index trap.
        let right = parse_module(
            "func @main(i32) -> i32 {\n\
             b0:\n    r2 = const.i32 0\n    r3 = aload.i32 r2, r2\n    ret r3\n}\n",
        )
        .unwrap();
        let err = differential_check(&left, &right, Target::Ia64, &OracleConfig::default())
            .expect_err("must diverge");
        assert!(err.left != err.right);
    }

    #[test]
    fn deterministic_across_calls() {
        let m = parse_module(GOOD).unwrap();
        let a = differential_check(&m, &m.clone(), Target::Ia64, &OracleConfig::default());
        let b = differential_check(&m, &m.clone(), Target::Ia64, &OracleConfig::default());
        assert_eq!(a, b);
    }
}
