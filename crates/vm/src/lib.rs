//! # sxe-vm — a machine-model interpreter for the sxe IR
//!
//! Executes IR modules under the precise 64-bit machine model the paper's
//! sign-extension elimination is proved against:
//!
//! * registers are 64-bit; 32-bit operations compute full 64-bit results
//!   whose low 32 bits are correct and whose upper bits are "garbage"
//!   (deterministically so, which makes differential testing exact);
//! * 32-bit memory loads zero-extend on [`sxe_ir::Target::Ia64`] and
//!   sign-extend on [`sxe_ir::Target::Ppc64`];
//! * array bounds checks compare only the low 32 bits of the index
//!   (IA64 `cmp4.ltu`), while the effective address uses the full register
//!   (`shladd`) — an index with garbage upper bits that slips past the
//!   check faults with [`sxe_ir::TrapKind::WildAddress`].
//!
//! The machine counts every executed instruction, every executed
//! [`sxe_ir::Inst::Extend`] by width (the paper's Tables 1–2 metric), and
//! accumulates cycle-model cost (Figures 13–14). It can also collect
//! block-level profiles, playing the role of the paper's interpreter in
//! the combined interpreter + dynamic compiler system.
//!
//! Execution goes through the [`VmBuilder`] → [`Vm`] API. Two engines
//! share the semantics: [`Engine::Decoded`] (the default) pre-decodes
//! every function once into dense op arrays with fused superinstructions
//! and dispatches over them in a tight loop; [`Engine::Tree`] walks the
//! instruction tree directly ([`Machine`], the executable reference the
//! decoded engine is differentially tested against).
//!
//! ```
//! use sxe_ir::{parse_module, Target, Width};
//! use sxe_vm::Vm;
//!
//! let m = parse_module(
//!     "func @f(i32) -> i32 {\nb0:\n    r0 = extend.32 r0\n    ret r0\n}\n",
//! )?;
//! let mut vm = Vm::builder(&m).target(Target::Ia64).build();
//! let out = vm.run("f", &[7]).expect("no trap");
//! assert_eq!(out.ret, Some(7));
//! assert_eq!(vm.counters().extend_count(Some(Width::W32)), 1);
//! # Ok::<(), sxe_ir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod oracle;
pub mod sched;
mod counters;
mod decode;
mod error;
mod exec;
mod heap;
mod machine;
mod native_engine;
mod vm;

pub use counters::{mnemonic, op_index, Counters, SharedCounters, MNEMONICS};
pub use error::Trap;
pub use heap::{ArrayObj, Heap, HEAP_LIMIT_ELEMS};
pub use machine::{BlockHook, Machine, Outcome, DEFAULT_FUEL, MAX_CALL_DEPTH};
pub use oracle::{differential_check, differential_replay, oracle_args, Mismatch, OracleConfig};
pub use vm::{Engine, Vm, VmBuilder, VmError};

/// The types a VM harness typically needs, in one import.
pub mod prelude {
    pub use crate::{
        differential_check, Counters, Engine, Mismatch, OracleConfig, Outcome, Trap, Vm,
        VmBuilder, VmError, DEFAULT_FUEL,
    };
}
