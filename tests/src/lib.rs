//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in `it/*.rs`; this library hosts utilities they
//! share: a compile-and-run harness and the random program generator
//! used by the differential property tests.

pub mod gen;

use sxe_core::Variant;
use sxe_ir::{Module, Target, TrapKind};
use sxe_jit::Compiler;
use sxe_vm::{Vm, VmError};

/// Observable outcome of one execution: return value, heap checksum, and
/// (if it trapped) the trap kind. Two executions with equal `RunKey`s are
/// behaviourally identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunKey {
    /// Return value (raw bits), if the run completed.
    pub ret: Option<i64>,
    /// Heap checksum, if the run completed.
    pub heap: Option<u64>,
    /// Trap kind, if the run trapped.
    pub trap: Option<TrapKind>,
}

/// Compile `source` with `variant` and run `entry(args)`, returning the
/// observable outcome plus the dynamic extension count.
///
/// # Panics
/// Panics on verifier failures (a compiler bug) or a
/// [`TrapKind::WildAddress`] fault (an unsound elimination).
#[must_use]
pub fn compile_run(
    source: &Module,
    variant: Variant,
    target: Target,
    entry: &str,
    args: &[i64],
    fuel: u64,
) -> (RunKey, u64) {
    let compiled = Compiler::for_variant(variant).with_target(target).compile(source);
    let mut vm = Vm::builder(&compiled.module).target(target).fuel(fuel).build();
    let key = match vm.run(entry, args) {
        Ok(out) => RunKey { ret: out.ret, heap: Some(out.heap_checksum), trap: None },
        Err(VmError::Trap(t)) => {
            assert_ne!(
                t.kind,
                TrapKind::WildAddress,
                "unsound sign-extension elimination under {variant}: {t}"
            );
            RunKey { ret: None, heap: None, trap: Some(t.kind) }
        }
        Err(e) => panic!("entry {entry} rejected: {e}"),
    };
    (key, vm.counters().extend_count(None))
}
