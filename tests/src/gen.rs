//! A random-program generator for differential testing.
//!
//! Generates small, always-terminating, type-consistent programs in
//! 32-bit form (the pipeline's input language): integer expression
//! statements over a fixed set of `i32` variables, bounded loops,
//! conditionals, array traffic (both masked-safe and possibly-trapping
//! indices), and the extension-sensitive operations (`i2d`, 64-bit
//! compares, arithmetic shifts, division, byte casts).
//!
//! Every variable is initialized at entry (Java definite assignment), so
//! the analyses' reaching-definition chains are total.

use sxe_ir::rng::XorShift;
use sxe_ir::{BinOp, Cond, FunctionBuilder, Module, Reg, Ty, UnOp, Width};

/// Number of `i32` program variables.
pub const NUM_VARS: usize = 5;
/// Array length (power of two so masked indices are always in bounds).
pub const ARRAY_LEN: i64 = 16;

/// Expression producing an `i32` value.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Integer literal.
    Const(i32),
    /// Variable read.
    Var(usize),
    /// Binary operation on two sub-expressions.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Load `a[e & (ARRAY_LEN-1)]` — always in bounds.
    LoadMasked(Box<Expr>),
    /// Load `a[e]` — may trap `IndexOutOfBounds`.
    LoadRaw(Box<Expr>),
    /// Compare producing 0/1 at the given width (64-bit compares read
    /// full registers: extension-sensitive).
    Cmp(Cond, bool, Box<Expr>, Box<Expr>),
    /// `(byte)e` — an explicit 8-bit sign extension.
    CastByte(Box<Expr>),
    /// `char`-style zero extension of the low 16 bits.
    Zext16(Box<Expr>),
    /// `(int)(double)e` — a round trip through `f64` (i2d then d2i);
    /// observes the full register.
    RoundTripF64(Box<Expr>),
    /// `helper(a, b)` — a call to a small leaf function (`(a & 0xffff) -
    /// b/3 + a[?]`-flavoured), exercising the calling convention and the
    /// inliner.
    CallHelper(Box<Expr>, Box<Expr>),
}

/// Statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `v = e`.
    Assign(usize, Expr),
    /// `a[e_idx & mask] = e_val` (or raw index when `masked` is false).
    Store(Expr, Expr, bool),
    /// `if (v cond w) { .. } else { .. }`.
    If(Cond, usize, usize, Vec<Stmt>, Vec<Stmt>),
    /// A loop with a fixed trip count (1..=4) over its body.
    Loop(u8, Vec<Stmt>),
    /// `fsum += (double) v` — an `i2d` use requiring a sign extension.
    AccumF64(usize),
}

/// A whole random program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Initial values of the variables.
    pub init: [i32; NUM_VARS],
    /// Statement list.
    pub stmts: Vec<Stmt>,
}

const BIN_OPS: [BinOp; 11] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Shru,
    BinOp::Div,
    BinOp::Rem,
];

const EXPR_CONDS: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ult, Cond::Ugt];
const STMT_CONDS: [Cond; 3] = [Cond::Lt, Cond::Eq, Cond::Gt];

fn gen_leaf_expr(rng: &mut XorShift) -> Expr {
    match rng.index(3) {
        0 => Expr::Const(rng.any_i32()),
        1 => Expr::Var(rng.index(NUM_VARS)),
        // Bias toward small constants: they exercise the range analysis.
        _ => Expr::Const(rng.range_i64(-4, 63) as i32),
    }
}

fn gen_expr(rng: &mut XorShift, depth: u32) -> Expr {
    // Roughly proptest's prop_recursive(3, ..): recurse with halving
    // probability until the depth budget is gone.
    if depth == 0 || rng.chance(1, 3) {
        return gen_leaf_expr(rng);
    }
    let d = depth - 1;
    match rng.index(8) {
        0 => Expr::Bin(
            BIN_OPS[rng.index(BIN_OPS.len())],
            Box::new(gen_expr(rng, d)),
            Box::new(gen_expr(rng, d)),
        ),
        1 => Expr::LoadMasked(Box::new(gen_expr(rng, d))),
        2 => Expr::LoadRaw(Box::new(gen_expr(rng, d))),
        3 => Expr::Cmp(
            EXPR_CONDS[rng.index(EXPR_CONDS.len())],
            rng.flip(),
            Box::new(gen_expr(rng, d)),
            Box::new(gen_expr(rng, d)),
        ),
        4 => Expr::CastByte(Box::new(gen_expr(rng, d))),
        5 => Expr::Zext16(Box::new(gen_expr(rng, d))),
        6 => Expr::RoundTripF64(Box::new(gen_expr(rng, d))),
        _ => Expr::CallHelper(Box::new(gen_expr(rng, d)), Box::new(gen_expr(rng, d))),
    }
}

fn gen_leaf_stmt(rng: &mut XorShift) -> Stmt {
    match rng.index(3) {
        0 => Stmt::Assign(rng.index(NUM_VARS), gen_expr(rng, 3)),
        1 => Stmt::Store(gen_expr(rng, 3), gen_expr(rng, 3), rng.flip()),
        _ => Stmt::AccumF64(rng.index(NUM_VARS)),
    }
}

fn gen_stmts(rng: &mut XorShift, depth: u32, min: usize, max: usize) -> Vec<Stmt> {
    let n = min + rng.index(max - min + 1);
    (0..n).map(|_| gen_stmt(rng, depth)).collect()
}

fn gen_stmt(rng: &mut XorShift, depth: u32) -> Stmt {
    if depth == 0 || rng.chance(2, 3) {
        return gen_leaf_stmt(rng);
    }
    let d = depth - 1;
    if rng.flip() {
        Stmt::If(
            STMT_CONDS[rng.index(STMT_CONDS.len())],
            rng.index(NUM_VARS),
            rng.index(NUM_VARS),
            gen_stmts(rng, d, 0, 2),
            gen_stmts(rng, d, 0, 2),
        )
    } else {
        Stmt::Loop(1 + rng.below(3) as u8, gen_stmts(rng, d, 1, 3))
    }
}

/// Generate a whole pseudo-random program from `rng` — the deterministic
/// replacement for the old proptest strategy. Same seed, same program.
#[must_use]
pub fn program(rng: &mut XorShift) -> Program {
    Program {
        init: std::array::from_fn(|_| rng.any_i32()),
        stmts: gen_stmts(rng, 3, 1, 7),
    }
}

/// The programs a property test at `cases` iterations sees: one per
/// seed derived from `seed`, each paired with its case index for error
/// reporting.
pub fn program_corpus(seed: u64, cases: usize) -> impl Iterator<Item = (usize, Program)> {
    let mut rng = XorShift::new(seed);
    (0..cases).map(move |i| (i, program(&mut rng)))
}

/// State used while lowering a [`Program`] to IR.
struct Lower {
    vars: [Reg; NUM_VARS],
    arr: Reg,
    fsum: Reg,
    helper: sxe_ir::FuncId,
}

fn lower_expr(fb: &mut FunctionBuilder, st: &Lower, e: &Expr) -> Reg {
    match e {
        Expr::Const(v) => fb.iconst(Ty::I32, *v as i64),
        Expr::Var(i) => st.vars[*i],
        Expr::Bin(op, a, b) => {
            let ra = lower_expr(fb, st, a);
            let rb = lower_expr(fb, st, b);
            fb.bin(*op, Ty::I32, ra, rb)
        }
        Expr::LoadMasked(e) => {
            let r = lower_expr(fb, st, e);
            let mask = fb.iconst(Ty::I32, ARRAY_LEN - 1);
            let idx = fb.bin(BinOp::And, Ty::I32, r, mask);
            fb.array_load(Ty::I32, st.arr, idx)
        }
        Expr::LoadRaw(e) => {
            let idx = lower_expr(fb, st, e);
            fb.array_load(Ty::I32, st.arr, idx)
        }
        Expr::Cmp(c, wide, a, b) => {
            let ra = lower_expr(fb, st, a);
            let rb = lower_expr(fb, st, b);
            let ty = if *wide { Ty::I64 } else { Ty::I32 };
            fb.setcc(*c, ty, ra, rb)
        }
        Expr::CastByte(e) => {
            let r = lower_expr(fb, st, e);
            fb.extend(r, Width::W8)
        }
        Expr::Zext16(e) => {
            let r = lower_expr(fb, st, e);
            fb.un(UnOp::Zext(Width::W16), Ty::I32, r)
        }
        Expr::RoundTripF64(e) => {
            let r = lower_expr(fb, st, e);
            let d = fb.un(UnOp::I32ToF64, Ty::F64, r);
            fb.un(UnOp::F64ToI32, Ty::I32, d)
        }
        Expr::CallHelper(a, b) => {
            let ra = lower_expr(fb, st, a);
            let rb = lower_expr(fb, st, b);
            fb.call(st.helper, vec![ra, rb], true).expect("helper returns")
        }
    }
}

/// The small leaf callee every generated module carries: masks, a shift,
/// a branch, and an i2d — the extension-sensitive mix, behind a call
/// boundary the inliner may or may not erase.
fn build_helper(m: &mut Module) -> sxe_ir::FuncId {
    let mut fb = FunctionBuilder::new("helper", vec![Ty::I32, Ty::I32], Some(Ty::I32));
    let a = fb.param(0);
    let b = fb.param(1);
    let mask = fb.iconst(Ty::I32, 0xFFFF);
    let am = fb.bin(BinOp::And, Ty::I32, a, mask);
    let three = fb.iconst(Ty::I32, 3);
    let bq = fb.bin(BinOp::Div, Ty::I32, b, three);
    let t = fb.new_block();
    let e = fb.new_block();
    let j = fb.new_block();
    let out = fb.new_reg();
    fb.cond_br(Cond::Lt, Ty::I32, am, bq, t, e);
    fb.switch_to(t);
    let s = fb.bin(BinOp::Add, Ty::I32, am, bq);
    fb.copy_to(Ty::I32, out, s);
    fb.br(j);
    fb.switch_to(e);
    let d = fb.un(UnOp::I32ToF64, Ty::F64, am);
    let di = fb.un(UnOp::F64ToI32, Ty::I32, d);
    let x = fb.bin(BinOp::Xor, Ty::I32, di, bq);
    fb.copy_to(Ty::I32, out, x);
    fb.br(j);
    fb.switch_to(j);
    fb.ret(Some(out));
    m.add_function(fb.finish())
}

fn lower_stmts(fb: &mut FunctionBuilder, st: &Lower, stmts: &[Stmt]) {
    for s in stmts {
        match s {
            Stmt::Assign(v, e) => {
                let r = lower_expr(fb, st, e);
                fb.copy_to(Ty::I32, st.vars[*v], r);
            }
            Stmt::Store(val, idx, masked) => {
                let rv = lower_expr(fb, st, val);
                let ri = lower_expr(fb, st, idx);
                let ri = if *masked {
                    let mask = fb.iconst(Ty::I32, ARRAY_LEN - 1);
                    fb.bin(BinOp::And, Ty::I32, ri, mask)
                } else {
                    ri
                };
                fb.array_store(Ty::I32, st.arr, ri, rv);
            }
            Stmt::If(c, a, b, then_s, else_s) => {
                let t = fb.new_block();
                let e = fb.new_block();
                let j = fb.new_block();
                fb.cond_br(*c, Ty::I32, st.vars[*a], st.vars[*b], t, e);
                fb.switch_to(t);
                lower_stmts(fb, st, then_s);
                fb.br(j);
                fb.switch_to(e);
                lower_stmts(fb, st, else_s);
                fb.br(j);
                fb.switch_to(j);
            }
            Stmt::Loop(trip, body) => {
                // A dedicated counter guarantees termination.
                let k = fb.new_reg();
                let z = fb.iconst(Ty::I32, 0);
                fb.copy_to(Ty::I32, k, z);
                let lim = fb.iconst(Ty::I32, i64::from(*trip));
                let head = fb.new_block();
                let body_bb = fb.new_block();
                let exit = fb.new_block();
                fb.br(head);
                fb.switch_to(head);
                fb.cond_br(Cond::Lt, Ty::I32, k, lim, body_bb, exit);
                fb.switch_to(body_bb);
                lower_stmts(fb, st, body);
                let one = fb.iconst(Ty::I32, 1);
                fb.bin_to(BinOp::Add, Ty::I32, k, k, one);
                fb.br(head);
                fb.switch_to(exit);
            }
            Stmt::AccumF64(v) => {
                let d = fb.un(UnOp::I32ToF64, Ty::F64, st.vars[*v]);
                let ns = fb.bin(BinOp::Add, Ty::F64, st.fsum, d);
                fb.copy_to(Ty::F64, st.fsum, ns);
            }
        }
    }
}

/// Lower a [`Program`] to a single-function module whose `main()` returns
/// a checksum mixing every variable, the float accumulator, and the
/// array contents (via the VM heap checksum).
#[must_use]
pub fn lower(p: &Program) -> Module {
    let mut m = Module::new();
    let helper = build_helper(&mut m);
    let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I64));
    let vars = std::array::from_fn(|_| fb.new_reg());
    let fsum = fb.new_reg();
    let len = fb.iconst(Ty::I32, ARRAY_LEN);
    let arr = fb.new_array(Ty::I32, len);
    let zf = fb.fconst(0.0);
    fb.copy_to(Ty::F64, fsum, zf);
    for (i, &v) in vars.iter().enumerate() {
        let c = fb.iconst(Ty::I32, p.init[i] as i64);
        fb.copy_to(Ty::I32, v, c);
        // Seed the array too.
        let idx = fb.iconst(Ty::I32, (i as i64) * 3 % ARRAY_LEN);
        fb.array_store(Ty::I32, arr, idx, v);
    }
    let st = Lower { vars, arr, fsum, helper };
    lower_stmts(&mut fb, &st, &p.stmts);
    // checksum = ((v0*31+v1)*31+...) as i64 ^ d2l(fsum)
    let mut h = fb.iconst(Ty::I32, 0);
    for &v in &st.vars {
        let c31 = fb.iconst(Ty::I32, 31);
        let hm = fb.bin(BinOp::Mul, Ty::I32, h, c31);
        h = fb.bin(BinOp::Add, Ty::I32, hm, v);
    }
    let hw = fb.extend(h, Width::W32);
    let fl = fb.un(UnOp::F64ToI64, Ty::I64, st.fsum);
    let out = fb.bin(BinOp::Xor, Ty::I64, hw, fl);
    fb.ret(Some(out));
    m.add_function(fb.finish());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowered_programs_verify() {
        let p = Program {
            init: [1, -2, 3, -4, 5],
            stmts: vec![
                Stmt::Assign(0, Expr::Bin(BinOp::Add, Box::new(Expr::Var(1)), Box::new(Expr::Const(7)))),
                Stmt::Loop(3, vec![Stmt::Assign(2, Expr::LoadMasked(Box::new(Expr::Var(0))))]),
                Stmt::AccumF64(2),
                Stmt::If(
                    Cond::Lt,
                    0,
                    1,
                    vec![Stmt::Store(Expr::Var(3), Expr::Var(2), true)],
                    vec![],
                ),
            ],
        };
        let m = lower(&p);
        sxe_ir::verify_module(&m).unwrap();
    }
}
