//! Robustness properties across the stack: printer/parser round trips,
//! optimizer-only differentials, idempotence, and narrow-width
//! (8/16-bit) extension handling.

use sxe_core::Variant;
use sxe_ir::{parse_module, Target, TrapKind};
use sxe_jit::Compiler;
use sxe_vm::Vm;
use xelim_integration_tests::gen;

const FUEL: u64 = 2_000_000;

fn run_key(m: &sxe_ir::Module) -> (Option<i64>, Option<u64>, Option<TrapKind>) {
    let mut vm = Vm::builder(m).target(Target::Ia64).fuel(FUEL).build();
    match vm.run("main", &[]) {
        Ok(o) => (o.ret, Some(o.heap_checksum), None),
        Err(e) => (None, None, e.trap_kind()),
    }
}

const CASES: usize = 96;

/// Printing and reparsing is the identity on generated programs, and
/// the *textual* form is a fixed point for compiled output too (the
/// parser infers `reg_count` from the registers it sees, so a module
/// holding unused high registers after DCE differs structurally but
/// prints identically).
#[test]
fn print_parse_round_trip() {
    for (i, p) in gen::program_corpus(0x0b57_0001, CASES) {
        let m = gen::lower(&p);
        let text = m.to_string();
        let reparsed = parse_module(&text).expect("printed IR parses");
        assert_eq!(&m, &reparsed, "case {i}");
        let compiled = Compiler::for_variant(Variant::All).compile(&m);
        let text2 = compiled.module.to_string();
        let reparsed2 = parse_module(&text2).expect("compiled IR parses");
        assert_eq!(reparsed2.to_string(), text2, "case {i}");
    }
}

/// The general optimizer alone (step 2, no extension machinery)
/// preserves semantics of raw 32-bit-form programs.
#[test]
fn general_opts_alone_preserve_semantics() {
    for (i, p) in gen::program_corpus(0x0b57_0002, CASES) {
        let m = gen::lower(&p);
        let reference = run_key(&m);
        let mut optimized = m.clone();
        sxe_opt::run_module(&mut optimized, &sxe_opt::GeneralOpts::default(), Target::Ia64);
        sxe_ir::verify_module(&optimized).expect("optimizer output verifies");
        assert_eq!(reference, run_key(&optimized), "case {i}: {p:?}");
    }
}

/// Compiling the compiler's own output again preserves behaviour.
/// (Static extension counts need not shrink further: the conversion
/// step legitimately regenerates extensions after definitions whose
/// original extensions the theorems discharged — the pipeline's
/// contract is 32-bit-form input, not its own output.)
#[test]
fn recompilation_preserves_semantics() {
    for (i, p) in gen::program_corpus(0x0b57_0003, CASES) {
        let m = gen::lower(&p);
        let once = Compiler::for_variant(Variant::All).compile(&m);
        let twice = Compiler::for_variant(Variant::All).compile(&once.module);
        sxe_ir::verify_module(&twice.module).expect("verifies");
        assert_eq!(run_key(&once.module), run_key(&twice.module), "case {i}: {p:?}");
    }
}

#[test]
fn byte_cast_elimination_full_pipeline() {
    // (byte)(x & 0x7f) is already sign-extended-from-8; the full pipeline
    // removes the 8-bit extension.
    let m = parse_module(
        "func @main(i32) -> i32 {\n\
         b0:\n    r1 = const.i32 127\n    r2 = and.i32 r0, r1\n    r3 = extend.8 r2\n    ret r3\n}\n",
    )
    .unwrap();
    let c = Compiler::for_variant(Variant::All).compile(&m);
    assert_eq!(c.module.count_extends(Some(sxe_ir::Width::W8)), 0, "{}", c.module);
    let mut vm = Vm::new(&c.module, Target::Ia64);
    assert_eq!(vm.run("main", &[100]).unwrap().ret, Some(100));
}

#[test]
fn byte_cast_kept_when_needed() {
    // (byte)x with unknown x must keep its extension when the value is
    // returned (calling convention reads the full register).
    let m = parse_module(
        "func @main(i32) -> i32 {\n\
         b0:\n    r1 = extend.8 r0\n    ret r1\n}\n",
    )
    .unwrap();
    let c = Compiler::for_variant(Variant::All).compile(&m);
    assert_eq!(c.module.count_extends(Some(sxe_ir::Width::W8)), 1);
    let mut vm = Vm::new(&c.module, Target::Ia64);
    assert_eq!(vm.run("main", &[0x1FF]).unwrap().ret, Some(-1)); // low byte 0xFF
}

#[test]
fn short_width_pipeline_roundtrip() {
    // 16-bit casts in a loop; all variants agree dynamically.
    let m = parse_module(
        "func @main(i32) -> i32 {\n\
         b0:\n    r1 = const.i32 0\n    br b1\n\
         b1:\n    r2 = const.i32 1\n    r0 = sub.i32 r0, r2\n    r3 = extend.16 r0\n    r1 = add.i32 r1, r3\n    condbr gt.i32 r0, r2, b1, b2\n\
         b2:\n    r1 = extend.32 r1\n    ret r1\n}\n",
    )
    .unwrap();
    let mut reference = None;
    for v in Variant::ALL {
        let c = Compiler::for_variant(v).compile(&m);
        let mut vm = Vm::new(&c.module, Target::Ia64);
        let out = vm.run("main", &[1000]).unwrap().ret;
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(*r, out, "{v}"),
        }
    }
}

#[test]
fn call_depth_limit_traps_cleanly() {
    let m = parse_module(
        "func @main(i32) -> i32 {\n\
         b0:\n    r1 = call @main(r0)\n    ret r1\n}\n",
    )
    .unwrap();
    let mut vm = Vm::new(&m, Target::Ia64);
    assert_eq!(
        vm.run("main", &[1]).unwrap_err().trap_kind(),
        Some(TrapKind::ResourceExhausted)
    );
}

#[test]
fn parser_rejects_malformed_inputs() {
    for (src, what) in [
        ("func @f() {\nb0:\n    r0 = add.i32 r1\n}\n", "missing operand"),
        ("func @f() {\nb1:\n    ret\n}\n", "out-of-order block"),
        ("func @f() -> wat {\nb0:\n    ret\n}\n", "bad type"),
        ("func @f() {\nb0:\n    br b9\n    ret\n}\n", "verifies but... parse ok"),
        ("func @f() {\n    ret\n}\n", "inst before label"),
        ("nonsense\n", "no func"),
    ] {
        let r = parse_module(src);
        if what.contains("parse ok") {
            // This one parses but must fail verification.
            let m = r.expect("parses");
            assert!(sxe_ir::verify_module(&m).is_err());
        } else {
            assert!(r.is_err(), "{what}: {src}");
        }
    }
}

#[test]
fn max_array_len_extremes() {
    // Degenerate Theorem 4 bounds must not crash or mis-eliminate.
    let m = parse_module(
        "func @main(i32, i32) -> i32 {\n\
         b0:\n    r2 = newarray.i32 r0\n    br b1\n\
         b1:\n    r3 = const.i32 1\n    r1 = sub.i32 r1, r3\n    r4 = aload.i32 r2, r1\n    condbr gt.i32 r1, r3, b1, b2\n\
         b2:\n    ret r4\n}\n",
    )
    .unwrap();
    for maxlen in [1u32, 2, 0x7fff_ffff] {
        let mut compiler = Compiler::for_variant(Variant::All);
        compiler.sxe.max_array_len = maxlen;
        let c = compiler.compile(&m);
        let mut vm = Vm::new(&c.module, Target::Ia64);
        let out = vm.run("main", &[8, 7]).unwrap();
        assert_eq!(out.ret, Some(0), "maxlen={maxlen}");
    }
}
