//! The *shape* of the paper's Tables 1–2: aggregate relations between
//! variants over the whole workload set. Absolute counts differ from the
//! paper (different substrate), but who-beats-whom must reproduce.

use sxe_core::Variant;
use sxe_ir::Target;
use xelim_integration_tests::compile_run;

const FUEL: u64 = 120_000_000;
const SIZE: u32 = 32;

/// Dynamic 32-bit-extension counts per workload for one variant.
fn dynamic_counts(variant: Variant) -> Vec<(String, u64)> {
    sxe_workloads::all()
        .iter()
        .map(|w| {
            let m = w.build(SIZE);
            let (key, count) = compile_run(&m, variant, Target::Ia64, "main", &[], FUEL);
            assert!(key.trap.is_none(), "{} trapped under {variant}", w.name);
            (w.name.to_string(), count)
        })
        .collect()
}

fn total(v: Variant) -> u64 {
    dynamic_counts(v).iter().map(|(_, c)| c).sum()
}

#[test]
fn headline_ordering() {
    // Paper: baseline (100%) > gen-use > first algorithm > … > all.
    let baseline = total(Variant::Baseline);
    let gen_use = total(Variant::GenUse);
    let first = total(Variant::FirstAlgorithm);
    let basic = total(Variant::BasicUdDu);
    let array = total(Variant::Array);
    let all = total(Variant::All);
    assert!(baseline > 0);
    assert!(gen_use < baseline, "gen-use {gen_use} < baseline {baseline}");
    assert!(first < baseline, "first {first} < baseline {baseline}");
    assert!(basic <= first, "basic {basic} <= first {first}");
    assert!(array < basic, "array {array} < basic {basic}");
    assert!(all <= array, "all {all} <= array {array}");
    // The headline claim: the majority of sign extensions is eliminated.
    assert!(
        all * 2 < baseline,
        "`all` must eliminate the majority: all={all} baseline={baseline}"
    );
}

#[test]
fn array_elimination_is_the_big_lever() {
    // Paper observation: "Sign extension elimination for array indices
    // is most effective for all the benchmark programs." — the drop from
    // basic to array dwarfs the drop from basic to insert/order.
    let basic = total(Variant::BasicUdDu);
    let array = total(Variant::Array);
    let insert_order = total(Variant::InsertOrder);
    let array_gain = basic.saturating_sub(array);
    let io_gain = basic.saturating_sub(insert_order);
    assert!(
        array_gain > io_gain,
        "array gain {array_gain} must exceed insert+order gain {io_gain}"
    );
}

#[test]
fn combining_features_helps() {
    // Paper observation 1: combining insertion or array elimination with
    // order determination enhances effectiveness.
    let array = total(Variant::Array);
    let array_order = total(Variant::ArrayOrder);
    let all = total(Variant::All);
    assert!(array_order <= array, "array+order {array_order} <= array {array}");
    assert!(all <= array_order, "all {all} <= array+order {array_order}");
}

#[test]
fn pde_insertion_never_beats_simple() {
    // Paper: "the simple insertion algorithm is slightly better for all
    // the benchmarks" (aggregate form).
    let all = total(Variant::All);
    let pde = total(Variant::AllPde);
    assert!(all <= pde, "simple insertion {all} <= PDE {pde}");
}

#[test]
fn float_benchmarks_have_few_extensions() {
    // Fourier is float-dominated: its baseline extension *density*
    // (extensions per executed instruction) is far below the integer
    // benchmarks' (paper Table 1: 14M total vs billions).
    let density = |name: &str| {
        let w = sxe_workloads::by_name(name).expect("exists");
        let m = w.build(SIZE);
        let c = sxe_jit::Compiler::for_variant(Variant::Baseline).compile(&m);
        let mut vm = sxe_vm::Vm::builder(&c.module).target(Target::Ia64).fuel(FUEL).build();
        vm.run("main", &[]).expect("no trap");
        vm.counters().extend_count(None) as f64 / vm.counters().insts as f64
    };
    let fourier = density("fourier");
    assert!(fourier < density("huffman"));
    assert!(fourier < density("compress"));
    assert!(fourier < density("numeric sort"));
}

#[test]
fn per_workload_all_never_worse_than_baseline() {
    let base = dynamic_counts(Variant::Baseline);
    let all = dynamic_counts(Variant::All);
    for ((name, b), (_, a)) in base.iter().zip(&all) {
        assert!(a <= b, "{name}: all={a} baseline={b}");
    }
}
