//! Cross-request behavior of the `sxed` compile service: artifact-key
//! identity across requests, refusal under load, and quarantine of
//! corrupted cache entries — plus the [`AnalysisCache`] companion
//! properties the artifact cache's keying is built on.

use std::time::Duration;

use sxe_analysis::AnalysisCache;
use sxe_ir::parse_module;
use sxe_serve::{
    stat_value, BreakerPolicy, BreakerState, CacheOutcome, CircuitBreaker, Client, CompileRequest,
    RefusalReason, Response, RetryPolicy, ServeConfig, Server,
};

const BODY_A: &str = "\
func @work(i32) -> i32 {
b0:
    r1 = const.i32 2
    r2 = add.i32 r0, r1
    r3 = mul.i32 r2, r2
    ret r3
}
";

/// Same function name, different body (the constant changed).
const BODY_B: &str = "\
func @work(i32) -> i32 {
b0:
    r1 = const.i32 3
    r2 = add.i32 r0, r1
    r3 = mul.i32 r2, r2
    ret r3
}
";

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sxe-it-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(tag: &str, config: ServeConfig) -> (Server, Client, std::path::PathBuf) {
    let dir = fresh_dir(tag);
    let server = Server::start(0, ServeConfig { cache_dir: dir.clone(), ..config }).unwrap();
    let client = Client::new(server.port());
    (server, client, dir)
}

fn compiled(resp: Response) -> (CacheOutcome, sxe_serve::CompiledArtifact) {
    match resp {
        Response::Compiled(outcome, artifact) => (outcome, artifact),
        other => panic!("expected a compiled response, got {other:?}"),
    }
}

/// Two sequential daemon requests with the same function name but
/// different bodies must get different artifacts: the key is the
/// structural fingerprint, not the name, so request B can never be
/// served request A's code.
#[test]
fn same_name_different_body_is_a_miss_not_a_stale_hit() {
    let (server, client, dir) = start("fingerprint", ServeConfig::default());
    let (o1, a1) = compiled(client.compile_once(&CompileRequest::new(BODY_A)).unwrap());
    let (o2, a2) = compiled(client.compile_once(&CompileRequest::new(BODY_B)).unwrap());
    assert_eq!(o1, CacheOutcome::Miss);
    assert_eq!(o2, CacheOutcome::Miss, "changed body with the same name must re-compile");
    assert_ne!(a1.key, a2.key, "artifact keys must separate the two bodies");
    assert_ne!(a1.text, a2.text, "the compiled constants differ");

    // Replaying each body hits its own entry, byte-identically.
    let (o3, a3) = compiled(client.compile_once(&CompileRequest::new(BODY_A)).unwrap());
    let (o4, a4) = compiled(client.compile_once(&CompileRequest::new(BODY_B)).unwrap());
    assert_eq!((o3, o4), (CacheOutcome::Hit, CacheOutcome::Hit));
    assert_eq!(a3, a1);
    assert_eq!(a4, a2);
    client.shutdown().unwrap();
    server.wait();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The backend is part of the artifact identity: after the native
/// x86-64 backend joined the VM, a cache populated by VM-era requests
/// must never answer a native-era request for the same body — and the
/// two backends keep hitting their *own* entries independently.
#[test]
fn vm_and_native_backend_requests_never_share_cache_entries() {
    let (server, client, dir) = start("backend", ServeConfig::default());
    let native = |src: &str| {
        CompileRequest { backend: sxe_jit::Backend::Native, ..CompileRequest::new(src) }
    };
    let (o1, a1) = compiled(client.compile_once(&CompileRequest::new(BODY_A)).unwrap());
    let (o2, a2) = compiled(client.compile_once(&CompileRequest::new(BODY_A)).unwrap());
    assert_eq!((o1, o2), (CacheOutcome::Miss, CacheOutcome::Hit));
    // Same body, native backend: a MISS with its own key, never A's entry.
    let (o3, a3) = compiled(client.compile_once(&native(BODY_A)).unwrap());
    assert_eq!(o3, CacheOutcome::Miss, "a VM-era entry must not serve a native-era request");
    assert_ne!(a3.key, a1.key, "backend must be folded into the key");
    // Both backends now hit their own entries.
    let (o4, a4) = compiled(client.compile_once(&native(BODY_A)).unwrap());
    let (o5, a5) = compiled(client.compile_once(&CompileRequest::new(BODY_A)).unwrap());
    assert_eq!((o4, o5), (CacheOutcome::Hit, CacheOutcome::Hit));
    assert_eq!(a4, a3);
    assert_eq!(a5, a2);
    client.shutdown().unwrap();
    server.wait();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The AnalysisCache companion property: rewriting a function bumps its
/// generation and invalidates its facts, and a function whose body
/// changed under the same name is a fingerprint miss, not a stale hit.
#[test]
fn analysis_cache_generation_bump_and_fingerprint_miss() {
    let module_a = parse_module(BODY_A).unwrap();
    let module_b = parse_module(BODY_B).unwrap();
    let (_, fa) = module_a.iter().next().unwrap();
    let (_, fb) = module_b.iter().next().unwrap();
    assert_ne!(fa.fingerprint(), fb.fingerprint(), "bodies differ, fingerprints must too");

    let mut cache = AnalysisCache::new();
    let before = cache.generation("work");
    let _ = cache.udu(fa);
    let _ = cache.udu(fa);
    // Each udu query goes through the cfg first, so a warm re-query
    // scores two hits (cfg + udu).
    assert_eq!(cache.hits(), 2, "second query of the same body is memoized");

    // A pass that rewrote the function bumps the generation and drops
    // the facts.
    cache.note_rewrites("work", 3);
    assert!(cache.generation("work") > before, "rewrites must bump the generation");
    let invalidations = cache.invalidations();
    assert!(invalidations >= 1);

    // Same name, different body: the fingerprint check forces a
    // recompute even though the cache has an entry under this name.
    let _ = cache.udu(fa);
    let hits = cache.hits();
    let _ = cache.udu(fb);
    assert_eq!(cache.hits(), hits, "body B must not hit body A's facts");
    assert_eq!(
        cache.misses(),
        6,
        "A, A-after-invalidation, and B all recomputed (cfg + udu each)"
    );
}

/// Saturating a one-slot queue yields typed `queue-full` refusals with
/// the configured retry hint — and every connection gets an orderly
/// answer (no hangs, no aborts).
#[test]
fn overload_sheds_with_typed_refusals() {
    let (server, client, dir) = start(
        "overload",
        ServeConfig {
            threads: 1,
            queue_capacity: 1,
            write_delay: Some(Duration::from_millis(250)),
            retry_after: Duration::from_millis(15),
            ..ServeConfig::default()
        },
    );
    let sources: Vec<String> =
        (0..6).map(|i| BODY_A.replace("@work", &format!("@work{i}"))).collect();
    let responses: Vec<Response> = std::thread::scope(|s| {
        let client = &client;
        let handles: Vec<_> = sources
            .iter()
            .map(|src| s.spawn(move || client.compile_once(&CompileRequest::new(src.clone())).unwrap()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let refused: Vec<_> =
        responses.iter().filter_map(|r| match r {
            Response::Refused(refusal) => Some(refusal),
            _ => None,
        }).collect();
    assert!(!refused.is_empty(), "a six-deep burst against one slot must shed load");
    for refusal in refused {
        assert_eq!(refusal.reason, RefusalReason::QueueFull);
        assert_eq!(refusal.retry_after_ms, 15);
    }
    let stats = client.stats().unwrap();
    assert!(stat_value(&stats, "serve.refused.queue_full").unwrap() >= 1);
    client.shutdown().unwrap();
    server.wait();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A peer that starts a frame and then stalls (slow loris) is cut off
/// at the frame deadline with a typed error — not after `io_timeout`,
/// and never by pinning the handler thread indefinitely.
#[test]
fn slow_loris_frame_is_cut_off_at_the_deadline_with_a_typed_error() {
    use std::io::{Read as _, Write as _};
    let (server, _client, dir) = start(
        "loris",
        ServeConfig {
            frame_deadline: Duration::from_millis(150),
            io_timeout: Duration::from_secs(10),
            ..ServeConfig::default()
        },
    );
    let mut stream = std::net::TcpStream::connect(("127.0.0.1", server.port())).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
    stream.set_nodelay(true).unwrap();
    // Claim a 64-byte frame, deliver only the prefix and kind, go silent.
    let mut partial = 64u32.to_be_bytes().to_vec();
    partial.push(0x01);
    stream.write_all(&partial).unwrap();
    let t0 = std::time::Instant::now();
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap(); // typed error frame, then close
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "cutoff took {elapsed:?} — the io_timeout, not the frame deadline, fired"
    );
    let (kind, payload) = sxe_serve::proto::read_frame(&mut std::io::Cursor::new(buf))
        .unwrap()
        .expect("a typed error frame must precede the close");
    let Response::Error(msg) = Response::decode(kind, &payload).unwrap() else {
        panic!("expected a typed error response");
    };
    assert!(msg.contains("deadline"), "{msg}");
    assert_eq!(
        server.telemetry().metrics_snapshot().counter("serve.net.frame_deadline_hits"),
        1
    );
    Client::new(server.port()).shutdown().unwrap();
    server.wait();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Beyond `max_connections` live handlers, a new connection gets a
/// typed `connection-limit` refusal with the retry hint — and service
/// resumes as soon as the held connections go away.
#[test]
fn connection_cap_refuses_typed_and_recovers() {
    let (server, client, dir) = start(
        "conncap",
        ServeConfig {
            max_connections: 2,
            retry_after: Duration::from_millis(35),
            ..ServeConfig::default()
        },
    );
    // Two idle connections pin the cap (their handlers wait for a frame).
    let held: Vec<std::net::TcpStream> = (0..2)
        .map(|_| std::net::TcpStream::connect(("127.0.0.1", server.port())).unwrap())
        .collect();
    std::thread::sleep(Duration::from_millis(100)); // let the accept loop count them
    let resp = client.compile_once(&CompileRequest::new(BODY_A)).unwrap();
    let Response::Refused(refusal) = resp else {
        panic!("expected a connection-limit refusal, got {resp:?}")
    };
    assert_eq!(refusal.reason, RefusalReason::ConnectionLimit);
    assert_eq!(refusal.retry_after_ms, 35);
    // Capacity freed: the same request now compiles.
    drop(held);
    std::thread::sleep(Duration::from_millis(100));
    let (outcome, _) = compiled(client.compile_once(&CompileRequest::new(BODY_A)).unwrap());
    assert_eq!(outcome, CacheOutcome::Miss);
    assert!(
        server.telemetry().metrics_snapshot().counter("serve.net.conn_refused") >= 1
    );
    client.shutdown().unwrap();
    server.wait();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A compile job that panics is contained to a typed error for its own
/// requester; the dispatcher and worker pool keep serving everyone
/// else.
#[test]
fn worker_panic_is_a_typed_error_and_the_pool_survives() {
    let (server, client, dir) = start(
        "panic",
        ServeConfig {
            compile_panic_on: Some("boom".into()),
            ..ServeConfig::default()
        },
    );
    let bomb = BODY_A.replace("@work", "@boom");
    let resp = client.compile_once(&CompileRequest::new(bomb)).unwrap();
    let Response::Error(msg) = resp else {
        panic!("expected a typed worker-panic error, got {resp:?}")
    };
    assert!(msg.contains("panicked"), "{msg}");
    // The pool is still alive and compiling.
    let (outcome, artifact) = compiled(client.compile_once(&CompileRequest::new(BODY_A)).unwrap());
    assert_eq!(outcome, CacheOutcome::Miss);
    assert!(!artifact.text.is_empty());
    let stats = client.stats().unwrap();
    assert_eq!(stat_value(&stats, "serve.worker.panics"), Some(1));
    client.shutdown().unwrap();
    server.wait();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The client-side circuit breaker: consecutive transport failures trip
/// it open (further calls are short-circuited without touching the
/// network), and after the cooldown a half-open probe against a healthy
/// daemon closes it again.
#[test]
fn circuit_breaker_opens_on_dead_daemon_and_recovers_on_probe() {
    // A port with nothing listening: connects fail instantly.
    let dead_port = {
        let l = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        l.local_addr().unwrap().port()
    };
    let dead = Client::new(dead_port).with_io_timeout(Duration::from_millis(200));
    let policy = RetryPolicy {
        max_attempts: 1,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
    };
    let mut breaker = CircuitBreaker::new(BreakerPolicy {
        failure_threshold: 2,
        cooldown: Duration::from_millis(20),
        max_cooldown: Duration::from_millis(100),
    });
    let mut rng = sxe_ir::rng::XorShift::new(11);
    let req = CompileRequest::new(BODY_A);
    for _ in 0..2 {
        let err = dead.compile_guarded(&req, &policy, &mut breaker, &mut rng).unwrap_err();
        assert!(matches!(err, sxe_serve::ClientError::Io(_)), "{err}");
    }
    assert_eq!(breaker.state(), BreakerState::Open);
    let err = dead.compile_guarded(&req, &policy, &mut breaker, &mut rng).unwrap_err();
    let sxe_serve::ClientError::CircuitOpen { retry_after } = err else {
        panic!("expected a short-circuit, got {err}")
    };
    assert!(retry_after <= Duration::from_millis(20));

    // Past the cooldown, the half-open probe lands on a healthy daemon
    // and closes the breaker.
    let (server, live, dir) = start("breaker", ServeConfig::default());
    std::thread::sleep(Duration::from_millis(30));
    let (outcome, _, _) = live.compile_guarded(&req, &policy, &mut breaker, &mut rng).unwrap();
    assert_eq!(outcome, CacheOutcome::Miss);
    assert_eq!(breaker.state(), BreakerState::Closed);
    live.shutdown().unwrap();
    server.wait();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A cache entry corrupted on disk between daemon runs is quarantined on
/// read: the response is recompiled (byte-identical to the original),
/// never served from the damaged bytes.
#[test]
fn corrupted_entry_is_quarantined_and_recompiled() {
    let config = ServeConfig::default();
    let dir = fresh_dir("quarantine");
    let config = ServeConfig { cache_dir: dir.clone(), ..config };

    let server = Server::start(0, config.clone()).unwrap();
    let client = Client::new(server.port());
    let (_, original) = compiled(client.compile_once(&CompileRequest::new(BODY_A)).unwrap());
    client.shutdown().unwrap();
    server.wait();

    // Flip one byte of the committed entry behind the daemon's back.
    let victim = dir.join(format!("{:016x}.art", original.key));
    let mut bytes = std::fs::read(&victim).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&victim, bytes).unwrap();

    let server = Server::start(0, config).unwrap();
    let client = Client::new(server.port());
    let (outcome, replay) = compiled(client.compile_once(&CompileRequest::new(BODY_A)).unwrap());
    assert_eq!(outcome, CacheOutcome::Miss, "damaged entry must not be served");
    assert_eq!(replay, original, "recompile must match the pre-corruption artifact");
    let stats = client.stats().unwrap();
    assert_eq!(stat_value(&stats, "serve.cache.quarantined"), Some(1));
    assert!(dir.join("quarantine").join(format!("{:016x}.art", original.key)).exists());
    client.shutdown().unwrap();
    server.wait();
    std::fs::remove_dir_all(&dir).unwrap();
}
