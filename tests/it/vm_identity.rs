//! Engine-identity suite: the decoded engine must be observably
//! indistinguishable from the tree-walking reference — same outcome
//! (return value + heap checksum), same trap kind, and bit-identical
//! dynamic [`Counters`] — on every workload, every target, and a
//! seeded fuzz sweep.
//!
//! The one sanctioned divergence is the trap *location* (`Trap::at`):
//! superinstruction fusion attributes a mid-fusion fuel trap to the
//! first fused component, so traps are compared by [`TrapKind`] only —
//! the same rule the differential oracle uses.

use sxe_core::Variant;
use sxe_fuzz::{generate_module, GenConfig};
use sxe_ir::rng::XorShift;
use sxe_ir::{Module, Target, TrapKind};
use sxe_jit::Compiler;
use sxe_vm::{Counters, Engine, Vm, VmError};

/// Enough fuel that no scaled-down workload exhausts it.
const WORKLOAD_FUEL: u64 = 200_000_000;

/// Everything an engine run exposes; two engines are "identical" when
/// these compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observation {
    /// `Ok((ret, heap_checksum))` or the trap kind (`None` for non-trap
    /// errors like arity mismatches, which carry no kind).
    result: Result<(Option<i64>, u64), Option<TrapKind>>,
    counters: Counters,
    fuel_remaining: u64,
}

fn observe(m: &Module, target: Target, engine: Engine, fuel: u64, args: &[i64]) -> Observation {
    let mut vm = Vm::builder(m).target(target).engine(engine).fuel(fuel).build();
    let result = match vm.run("main", args) {
        Ok(out) => Ok((out.ret, out.heap_checksum)),
        Err(e) => Err(e.trap_kind()),
    };
    Observation { result, counters: vm.counters().clone(), fuel_remaining: vm.fuel_remaining() }
}

/// Assert tree and decoded agree on every observable for one module.
fn assert_identical(m: &Module, target: Target, fuel: u64, args: &[i64], label: &str) {
    let tree = observe(m, target, Engine::Tree, fuel, args);
    let decoded = observe(m, target, Engine::Decoded, fuel, args);
    assert_eq!(tree, decoded, "{label} [{target:?}, fuel {fuel}]: engines diverged");
}

fn scaled(size: u32) -> u32 {
    (size / 4).max(4)
}

/// All 17 workloads, all three targets, both compile variants (baseline
/// keeps plain `Extend` ops; the full algorithm emits the fused
/// `*Ext` superinstructions), tree vs decoded.
#[test]
fn workloads_run_identically_on_both_engines() {
    for w in sxe_workloads::all() {
        let m = w.build(scaled(w.default_size));
        for variant in [Variant::Baseline, Variant::All] {
            let compiled = Compiler::for_variant(variant).compile(&m).module;
            for target in Target::ALL {
                let label = format!("{}/{variant:?}", w.name);
                assert_identical(&compiled, target, WORKLOAD_FUEL, &[], &label);
            }
        }
    }
}

/// Sweep fuel through awkward cutoffs so exhaustion lands mid-stream —
/// including inside fused superinstructions, where the decoded engine's
/// batched charging must fall back to exact per-component accounting.
/// Counters at the cutoff must match the tree engine bit-for-bit.
#[test]
fn fuel_cutoffs_are_bit_identical() {
    let compiler = Compiler::for_variant(Variant::All);
    for w in sxe_workloads::all().into_iter().take(4) {
        let compiled = compiler.compile(&w.build(scaled(w.default_size))).module;
        for fuel in [0, 1, 2, 3, 4, 5, 7, 11, 100, 1_001, 10_007, 100_003] {
            assert_identical(&compiled, Target::Ia64, fuel, &[], w.name);
        }
    }
}

/// Block-profile counts are part of the observable surface too.
#[test]
fn block_profiles_agree_between_engines() {
    let w = &sxe_workloads::all()[0];
    let m = Compiler::for_variant(Variant::All).compile(&w.build(scaled(w.default_size))).module;
    let mut profiles = Vec::new();
    for engine in [Engine::Tree, Engine::Decoded] {
        let mut vm = Vm::builder(&m)
            .target(Target::Ia64)
            .engine(engine)
            .fuel(WORKLOAD_FUEL)
            .profile(true)
            .build();
        vm.run("main", &[]).expect("workload must not trap");
        let per_func: Vec<Vec<u64>> = (0..m.functions.len())
            .map(|f| {
                vm.profile_counts(sxe_ir::FuncId(u32::try_from(f).unwrap()))
                    .expect("profiled")
                    .to_vec()
            })
            .collect();
        profiles.push(per_func);
    }
    assert_eq!(profiles[0], profiles[1], "{}: block profiles diverged", w.name);
}

/// Both engines must reject a bad entry point the same way.
#[test]
fn errors_agree_between_engines() {
    let m = sxe_workloads::all()[0].build(8);
    for engine in [Engine::Tree, Engine::Decoded] {
        let mut vm = Vm::builder(&m).engine(engine).build();
        assert!(matches!(
            vm.run("no_such_function", &[]),
            Err(VmError::UnknownFunction { .. })
        ));
        assert!(matches!(vm.run("main", &[1, 2, 3]), Err(VmError::ArityMismatch { .. })));
    }
}

/// Seeded fuzz smoke: 1000 generated modules (raw and fully compiled),
/// each function driven with deterministic pseudo-random arguments on
/// both engines. Low fuel on purpose — `ResourceExhausted` cutoffs are
/// part of the contract being checked.
#[test]
fn fuzzed_modules_run_identically_on_both_engines() {
    let config = GenConfig::default();
    let compiler = Compiler::for_variant(Variant::All);
    for seed in 0..1000u64 {
        let raw = generate_module(seed, &config);
        let compiled = compiler.compile(&raw).module;
        for (m, what) in [(&raw, "raw"), (&compiled, "compiled")] {
            for f in &m.functions {
                let mut rng = XorShift::new(seed ^ 0x5eed_f00d);
                let args: Vec<i64> =
                    (0..f.params.len()).map(|_| rng.range_i64(-16, 48)).collect();
                for target in Target::ALL {
                    let tree = run_func(m, target, Engine::Tree, &f.name, &args);
                    let decoded = run_func(m, target, Engine::Decoded, &f.name, &args);
                    assert_eq!(
                        tree, decoded,
                        "seed {seed} ({what}) @{} {args:?} [{target:?}]: engines diverged",
                        f.name
                    );
                }
            }
        }
    }
}

fn run_func(m: &Module, target: Target, engine: Engine, name: &str, args: &[i64]) -> Observation {
    let mut vm = Vm::builder(m).target(target).engine(engine).fuel(30_000).build();
    let result = match vm.run(name, args) {
        Ok(out) => Ok((out.ret, out.heap_checksum)),
        Err(e) => Err(e.trap_kind()),
    };
    Observation { result, counters: vm.counters().clone(), fuel_remaining: vm.fuel_remaining() }
}
