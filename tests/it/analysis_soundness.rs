//! Analysis-soundness properties validated against real executions, via
//! the VM's block-entry hook: the static analyses' claims must hold on
//! every value the machine actually computes.

use std::cell::RefCell;
use std::rc::Rc;

use sxe_analysis::{AvailableExt, FlowRanges, Freq, UdDu};
use sxe_core::Variant;
use sxe_ir::{Cfg, DomTree, LoopForest, Reg, Target, Width};
use sxe_jit::Compiler;
use sxe_vm::Vm;
use xelim_integration_tests::gen;

const FUEL: u64 = 500_000;

fn violations_of<F>(m: &sxe_ir::Module, watched: sxe_ir::FuncId, check: F) -> Vec<String>
where
    F: Fn(sxe_ir::BlockId, &[i64]) -> Option<String> + 'static,
{
    let viol: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = Rc::clone(&viol);
    let mut vm = Vm::builder(m)
        .target(Target::Ia64)
        .fuel(FUEL)
        .block_hook(Box::new(move |func, block, regs| {
            if func == watched {
                if let Some(msg) = check(block, regs) {
                    sink.borrow_mut().push(msg);
                }
            }
        }))
        .build();
    let _ = vm.run("main", &[]); // traps are fine; claims must hold up to them
    drop(vm); // releases the hook's Rc clone
    Rc::try_unwrap(viol).expect("sole owner").into_inner()
}

const CASES: usize = 64;

/// FlowRanges: at every block entry actually reached, each register's
/// low-32 value lies within the predicted interval.
#[test]
fn flow_ranges_bound_all_executions() {
    for (_, p) in gen::program_corpus(0xa5a5_0001, CASES) {
        let m = gen::lower(&p);
        let main = m.function_by_name("main").expect("main");
        let f = m.function(main).clone();
        let cfg = Cfg::compute(&f);
        let flow = FlowRanges::compute(&f, &cfg);
        let nregs = f.reg_count;
        let viol = violations_of(&m, main, move |b, regs| {
            for r in 0..nregs {
                let iv = flow.at_block_entry(b, Reg(r));
                let v = (regs[r as usize] as i32) as i64;
                if v < iv.lo || v > iv.hi {
                    return Some(format!(
                        "r{r} = {v} outside [{}, {}] at {b} entry",
                        iv.lo, iv.hi
                    ));
                }
            }
            None
        });
        assert!(viol.is_empty(), "{}\nprogram {:?}", viol.join("\n"), p);
    }
}

/// AvailableExt: a register claimed sign-extended (or upper-zero) at a
/// block entry is so in every execution — on the *compiled* module,
/// whose extensions the claim must survive.
#[test]
fn available_facts_hold_at_runtime() {
    for (_, p) in gen::program_corpus(0xa5a5_0002, CASES) {
        let source = gen::lower(&p);
        let compiled = Compiler::for_variant(Variant::All).compile(&source);
        let main = compiled.module.function_by_name("main").expect("main");
        let f = compiled.module.function(main).clone();
        let cfg = Cfg::compute(&f);
        let avail = AvailableExt::compute(&f, &cfg, Target::Ia64, Width::W32);
        let nregs = f.reg_count;
        let facts: Vec<Vec<sxe_ir::ExtFacts>> = (0..f.blocks.len())
            .map(|b| {
                (0..nregs)
                    .map(|r| avail.at_block_entry(sxe_ir::BlockId(b as u32), Reg(r)))
                    .collect()
            })
            .collect();
        let viol = violations_of(&compiled.module, main, move |b, regs| {
            for r in 0..nregs as usize {
                let fa = facts[b.index()][r];
                let v = regs[r];
                if fa.sign_extended && v != (v as i32) as i64 {
                    return Some(format!("r{r} = {v:#x} not sign-extended at {b}"));
                }
                if fa.upper_zero && v != ((v as u32) as i64) {
                    return Some(format!("r{r} = {v:#x} not upper-zero at {b}"));
                }
            }
            None
        });
        assert!(viol.is_empty(), "{}\nprogram {:?}", viol.join("\n"), p);
    }
}

/// The UD/DU chains' incremental maintenance across a full
/// elimination equals recomputation from scratch.
#[test]
fn chains_incremental_equals_recompute() {
    for (_, p) in gen::program_corpus(0xa5a5_0003, CASES) {
        let source = gen::lower(&p);
        let main = source.function_by_name("main").expect("main");
        let mut f = source.function(main).clone();
        sxe_core::convert_function(&mut f, Target::Ia64, sxe_core::GenStrategy::AfterDef);
        let cfg = Cfg::compute(&f);
        let mut udu = UdDu::compute(&f, &cfg);
        // Remove every in-place extension through the incremental path.
        let exts: Vec<sxe_ir::InstId> = f
            .insts()
            .filter_map(|(id, i)| match i {
                sxe_ir::Inst::Extend { dst, src, .. } if dst == src => Some(id),
                _ => None,
            })
            .collect();
        for id in exts {
            udu.remove_transparent_def(&f, id);
            f.delete_inst(id);
        }
        let fresh = UdDu::compute(&f, &cfg);
        assert_eq!(udu.edges(), fresh.edges());
    }
}

/// Static frequency estimation ranks loop bodies above straight-line
/// code whenever the program has a loop — and profile counts agree
/// with actual execution.
#[test]
fn profile_counts_match_execution() {
    for (_, p) in gen::program_corpus(0xa5a5_0004, CASES) {
        let m = gen::lower(&p);
        let mut vm = Vm::builder(&m).target(Target::Ia64).fuel(FUEL).profile(true).build();
        if vm.run("main", &[]).is_err() {
            // Trapping programs still produce a (partial) profile, but
            // the invariants below are about completed runs.
            continue;
        }
        let main = m.function_by_name("main").expect("main");
        let counts = vm.profile_counts(main).unwrap().to_vec();
        // Entry executes exactly once.
        assert_eq!(counts[0], 1);
        let fr = Freq::from_counts(&counts);
        let f = m.function(main);
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(&cfg);
        let loops = LoopForest::compute(&cfg, &dom);
        // Every block inside a loop with trip count > 1 must have run at
        // least as often as the entry when reached at all.
        for b in f.block_ids() {
            if loops.depth(b) > 0 && fr.of(b) > 0.0 {
                assert!(fr.of(b) >= 1.0);
            }
        }
    }
}
