//! Fault-injection (chaos) properties across the stack: every injected
//! panic, IR corruption, or budget exhaustion at any pass boundary must
//! be contained by the compile harness — never aborting the process,
//! always leaving a trace in the [`sxe_jit::CompileReport`], and never
//! shipping a module the differential oracle can distinguish from the
//! original.

use std::panic::{self, AssertUnwindSafe};

use sxe_core::Variant;
use sxe_ir::Target;
use sxe_jit::{CompileError, Compiler, FaultPlan, InjectedFault, PassStatus};
use sxe_vm::{differential_check, OracleConfig};
use xelim_integration_tests::gen;

const SEEDS: u64 = 32;

/// The acceptance sweep on generated programs: 32 fault seeds per
/// program, each landing a panic, corruption, or exhaustion at a
/// pseudo-random boundary. Nothing escapes, everything is reported,
/// the oracle finds nothing.
#[test]
fn injected_faults_are_contained_reported_and_harmless() {
    for (case, p) in gen::program_corpus(0xfa17_0001, 6) {
        let m = gen::lower(&p);
        // The oracle reference is the conversion-only compile: the raw
        // module is not meaningful on the 64-bit machine model until
        // step 1 has inserted its sign extensions.
        let reference = Compiler::for_variant(Variant::Baseline).compile(&m).module;
        let dry = Compiler::for_variant(Variant::All).compile(&m);
        let boundaries = dry.report.boundaries() as u32;
        for seed in 0..SEEDS {
            let plan = FaultPlan::from_seed(seed, boundaries);
            let compiler = Compiler::for_variant(Variant::All).with_fault_plan(plan);
            let compiled = panic::catch_unwind(AssertUnwindSafe(|| compiler.compile(&m)))
                .unwrap_or_else(|_| {
                    panic!("case {case} seed {seed}: compile aborted (plan {plan:?})")
                });
            assert!(
                compiled.report.incidents() >= 1,
                "case {case} seed {seed}: no incident recorded (plan {plan:?})"
            );
            let n = differential_check(
                &reference,
                &compiled.module,
                Target::Ia64,
                &OracleConfig::new().runs(4),
            )
            .unwrap_or_else(|mis| {
                panic!("case {case} seed {seed}: oracle mismatch: {mis}")
            });
            assert!(n > 0, "case {case} seed {seed}: oracle compared nothing");
        }
    }
}

/// Each fault kind leaves its own specific trace: a panic and a
/// corruption both roll the pass back, exhaustion skips and sets the
/// budget flag.
#[test]
fn each_fault_kind_is_visible_in_the_report() {
    let m = gen::lower(&gen::program_corpus(0xfa17_0002, 1).next().expect("one case").1);
    let dry = Compiler::for_variant(Variant::All).compile(&m);
    let boundaries = dry.report.boundaries() as u32;
    let mut kinds_seen = [false; 3];
    for seed in 0..64 {
        let plan = FaultPlan::from_seed(seed, boundaries);
        let compiled =
            Compiler::for_variant(Variant::All).with_fault_plan(plan).compile(&m);
        let injected: Vec<_> =
            compiled.report.records.iter().filter(|r| r.injected.is_some()).collect();
        assert_eq!(injected.len(), 1, "seed {seed}: exactly one injection fires");
        let rec = injected[0];
        match rec.injected.unwrap() {
            InjectedFault::Panic => {
                kinds_seen[0] = true;
                assert!(
                    matches!(rec.status, PassStatus::RolledBack(_)),
                    "seed {seed}: injected panic must roll back, got {:?}",
                    rec.status
                );
            }
            InjectedFault::Corrupt => {
                kinds_seen[1] = true;
                assert!(
                    matches!(rec.status, PassStatus::RolledBack(_)),
                    "seed {seed}: injected corruption must be caught by the \
                     verify gate, got {:?}",
                    rec.status
                );
            }
            InjectedFault::Exhaust => {
                kinds_seen[2] = true;
                assert!(
                    matches!(rec.status, PassStatus::BudgetExhausted),
                    "seed {seed}: injected exhaustion must show as budget \
                     exhaustion, got {:?}",
                    rec.status
                );
                assert!(compiled.report.budget_exhausted);
            }
            InjectedFault::Miscompile => {
                // `from_seed` plans only the three contained kinds; the
                // miscompile plant is reserved for the fuzzer's self-test
                // (`FaultPlan::miscompile`).
                panic!("seed {seed}: from_seed must never plant a miscompile");
            }
        }
    }
    assert_eq!(kinds_seen, [true; 3], "64 seeds cover all three fault kinds");
}

/// A fault-free compile with the same configuration stays clean and
/// eliminates exactly as many extensions as one compiled without any
/// harness bookkeeping enabled — injection is pay-for-use.
#[test]
fn no_fault_no_change() {
    for (_, p) in gen::program_corpus(0xfa17_0003, 4) {
        let m = gen::lower(&p);
        let plain = Compiler::for_variant(Variant::All).compile(&m);
        assert!(plain.report.clean(), "report: {}", plain.report.summary());
        let with_budget =
            Compiler::for_variant(Variant::All).with_budget(Some(1 << 32), None).compile(&m);
        assert_eq!(plain.stats.eliminated, with_budget.stats.eliminated);
        assert_eq!(plain.module.to_string(), with_budget.module.to_string());
    }
}

/// Starved budgets still deliver a verified, semantically intact module —
/// except a budget empty before the first pass, which is refused outright
/// with a typed error rather than returning the input untouched.
#[test]
fn starved_budget_still_ships_correct_code() {
    for (case, p) in gen::program_corpus(0xfa17_0004, 4) {
        let m = gen::lower(&p);
        let reference = Compiler::for_variant(Variant::Baseline).compile(&m).module;
        let refused = Compiler::for_variant(Variant::All)
            .with_budget(Some(0), None)
            .try_compile(&m)
            .unwrap_err();
        assert_eq!(refused, CompileError::BudgetExhaustedBeforeStart, "case {case}");
        for fuel in [1u64, 2, 5, 13] {
            let compiled = Compiler::for_variant(Variant::All)
                .with_budget(Some(fuel), None)
                .compile(&m);
            differential_check(
                &reference,
                &compiled.module,
                Target::Ia64,
                &OracleConfig::new().runs(4),
            )
            .unwrap_or_else(|mis| {
                panic!("case {case} fuel {fuel}: oracle mismatch: {mis}")
            });
        }
    }
}
