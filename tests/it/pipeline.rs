//! Cross-crate pipeline properties: static/dynamic count ordering,
//! printing/parsing round trips of compiled output, and idempotence.

use sxe_core::Variant;
use sxe_ir::{parse_module, Target};
use sxe_jit::Compiler;
use sxe_vm::Vm;

fn workload_module() -> sxe_ir::Module {
    sxe_workloads::by_name("huffman").expect("exists").build(48)
}

#[test]
fn compiled_output_round_trips_through_text() {
    for v in [Variant::Baseline, Variant::All] {
        let c = Compiler::for_variant(v).compile(&workload_module());
        let text = c.module.to_string();
        let reparsed = parse_module(&text).expect("compiled IR parses");
        // Textual fixed point (structural equality can differ in the
        // parser-inferred reg_count when DCE leaves high registers
        // unused).
        assert_eq!(reparsed.to_string(), text, "{v}");
    }
}

#[test]
fn compilation_is_deterministic() {
    let m = workload_module();
    let a = Compiler::for_variant(Variant::All).compile(&m);
    let b = Compiler::for_variant(Variant::All).compile(&m);
    assert_eq!(a.module, b.module);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn recompiling_compiled_output_preserves_behaviour() {
    // The pipeline's contract is 32-bit-form input; feeding it its own
    // output is still well-defined and must preserve behaviour (static
    // counts may differ as conversion regenerates extensions).
    let m = workload_module();
    let once = Compiler::for_variant(Variant::All).compile(&m);
    let twice = Compiler::for_variant(Variant::All).compile(&once.module);
    let run = |module: &sxe_ir::Module| {
        let mut vm = Vm::builder(module).target(Target::Ia64).fuel(50_000_000).build();
        vm.run("main", &[]).expect("no trap").ret
    };
    assert_eq!(run(&once.module), run(&twice.module));
}

#[test]
fn static_counts_follow_variant_strength() {
    for w in ["huffman", "compress", "numeric sort", "db"] {
        let m = sxe_workloads::by_name(w).expect("exists").build(32);
        let count = |v: Variant| {
            Compiler::for_variant(v).compile(&m).module.count_extends(None)
        };
        let baseline = count(Variant::Baseline);
        let basic = count(Variant::BasicUdDu);
        let array = count(Variant::Array);
        let all = count(Variant::All);
        assert!(basic <= baseline, "{w}: basic {basic} <= baseline {baseline}");
        assert!(array <= basic, "{w}: array {array} <= basic {basic}");
        assert!(all <= baseline, "{w}: all {all} <= baseline {baseline}");
    }
}

#[test]
fn timing_buckets_are_populated() {
    let m = workload_module();
    let c = Compiler::for_variant(Variant::All).compile(&m);
    let t = c.times;
    assert!(t.total().as_nanos() > 0);
    assert!(t.chain_creation.as_nanos() > 0, "chains were built");
    assert!(t.sxe_opt.as_nanos() > 0, "elimination ran");
}

#[test]
fn stats_are_consistent() {
    let m = workload_module();
    let c = Compiler::for_variant(Variant::All).compile(&m);
    assert!(c.stats.generated > 0);
    assert!(c.stats.examined >= c.stats.eliminated);
    assert!(c.stats.eliminated >= c.stats.eliminated_via_array);
    assert!(c.stats.dummies > 0, "huffman is full of array accesses");
}
