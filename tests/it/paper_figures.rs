//! The paper's worked examples, end to end.
//!
//! * Figure 3 — the four limitations of the first algorithm;
//! * Figures 7/8 — insertion moves the accumulator's extension out of
//!   the loop;
//! * Figure 9 — order determination decides which of two extensions
//!   survives;
//! * Figure 10 — eliminability depends on the guaranteed maximum array
//!   size;
//! * Figure 15 — the PDE insertion variant misses placements the simple
//!   insertion finds.

use sxe_core::{convert_function, run_step3, GenStrategy, SxeConfig, Variant};
use sxe_ir::{parse_function, BlockId, Function, Target, Width};

/// The paper's Figure 3 program (its Figure 7 is the same loop):
///
/// ```text
/// int t = 0; int i = mem;
/// do { i = i - 1; j = a[i]; j = j & 0x0fffffff; t += j; } while (i > start);
/// d = (double) t;
/// ```
fn figure3(step: i64) -> Function {
    let src = format!(
        "func @fig3(i32, i32) -> f64 {{\n\
         b0:\n    r2 = newarray.i32 r0\n    r3 = const.i32 0\n    br b1\n\
         b1:\n    r4 = const.i32 {step}\n    r1 = sub.i32 r1, r4\n    r5 = aload.i32 r2, r1\n    r6 = const.i32 268435455\n    r5 = and.i32 r5, r6\n    r3 = add.i32 r3, r5\n    condbr gt.i32 r1, r4, b1, b2\n\
         b2:\n    r7 = i32tof64.f64 r3\n    ret r7\n}}\n"
    );
    let mut f = parse_function(&src).unwrap();
    convert_function(&mut f, Target::Ia64, GenStrategy::AfterDef);
    f
}

fn extends_in(f: &Function, b: u32) -> usize {
    f.block(BlockId(b)).insts.iter().filter(|i| i.is_extend(None)).count()
}

#[test]
fn figure3_first_algorithm_limitations() {
    // The first algorithm eliminates the extensions whose upper bits are
    // never demanded — (1), (5), (7) in the paper — but must keep the
    // array-index extension (3) and the in-loop accumulator extension (9).
    let mut f = figure3(1);
    let generated = f.count_extends(None);
    run_step3(&mut f, &SxeConfig::for_variant(Variant::FirstAlgorithm), None);
    let remaining = f.count_extends(None);
    assert!(remaining < generated, "some extensions eliminated");
    // Limitation 1: the index extension is still in the loop.
    // Limitation 4: the accumulator extension is still in the loop.
    assert_eq!(extends_in(&f, 1), 2, "index + accumulator stay in the loop:\n{f}");
}

#[test]
fn figure8_new_algorithm_cleans_the_loop() {
    // Figure 8(b): with insertion + order + array analysis, the loop
    // holds no extensions; one remains after the loop for (double)t.
    let mut f = figure3(1);
    run_step3(&mut f, &SxeConfig::for_variant(Variant::All), None);
    assert_eq!(extends_in(&f, 1), 0, "loop body clean:\n{f}");
    assert_eq!(extends_in(&f, 2), 1, "one extension before the i2d:\n{f}");
}

#[test]
fn figure8_insertion_required_for_loop_exit_motion() {
    // Without insertion ("array, order"), the accumulator's extension
    // cannot move out of the loop: the extension-free placement after
    // the loop does not exist yet.
    let mut f = figure3(1);
    run_step3(&mut f, &SxeConfig::for_variant(Variant::ArrayOrder), None);
    assert!(
        extends_in(&f, 1) >= 1,
        "without insertion the accumulator extension stays in the loop:\n{f}"
    );
}

#[test]
fn figure9_order_determination_picks_the_loop_extension() {
    // i = j + k; do { i = i + 1; a[i] = 0; } while (i < end);
    // (The fragment must not return `i`: a narrow return value would
    // itself require an extension and pin the in-loop one.)
    let src = "func @fig9(i32, i32, i32) -> i32 {\n\
         b0:\n    r3 = newarray.i32 r0\n    r4 = add.i32 r1, r2\n    br b1\n\
         b1:\n    r5 = const.i32 1\n    r4 = add.i32 r4, r5\n    r6 = const.i32 0\n    astore.i32 r3, r4, r6\n    condbr lt.i32 r4, r0, b1, b2\n\
         b2:\n    r7 = const.i32 7\n    ret r7\n}\n";
    // With order determination (Result 1): the loop extension goes, the
    // entry extension stays.
    let mut f = parse_function(src).unwrap();
    convert_function(&mut f, Target::Ia64, GenStrategy::AfterDef);
    run_step3(&mut f, &SxeConfig::for_variant(Variant::ArrayOrder), None);
    assert_eq!(extends_in(&f, 1), 0, "Result 1: loop extension eliminated:\n{f}");
    assert_eq!(extends_in(&f, 0), 1, "Result 1: entry extension kept:\n{f}");

    // Without order determination exactly one extension also survives —
    // which one depends on the visit order (the paper's Result 2 shows
    // the bad case).
    let mut g = parse_function(src).unwrap();
    convert_function(&mut g, Target::Ia64, GenStrategy::AfterDef);
    run_step3(&mut g, &SxeConfig::for_variant(Variant::Array), None);
    assert_eq!(extends_in(&g, 0) + extends_in(&g, 1), 1, "exactly one survivor:\n{g}");
}

#[test]
fn figure10_array_size_gates_elimination() {
    // i = i - 2: with the Java maximum array size the Theorem 4 window
    // [-1, 0x7fffffff] excludes -2 and the extension stays; with maxlen
    // 0x7fff0001 the window [-65535, 0x7fffffff] admits it.
    let mut f = figure3(2);
    let mut cfg = SxeConfig::for_variant(Variant::All);
    run_step3(&mut f, &cfg, None);
    assert!(extends_in(&f, 1) >= 1, "index extension must stay with maxlen 2^31-1:\n{f}");

    let mut g = figure3(2);
    cfg.max_array_len = 0x7FFF_0001;
    run_step3(&mut g, &cfg, None);
    assert_eq!(extends_in(&g, 1), 0, "smaller maxlen admits i-2:\n{g}");
}

#[test]
fn figure15_pde_insertion_is_weaker() {
    // A value extended on no path reaches a requiring use: simple
    // insertion anticipates an extension there, PDE cannot move one in.
    let src = "func @fig15(i32, i32) -> f64 {\n\
         b0:\n    br b1\n\
         b1:\n    r2 = const.i32 1\n    r0 = add.i32 r0, r2\n    condbr gt.i32 r0, r1, b1, b2\n\
         b2:\n    r3 = i32tof64.f64 r0\n    ret r3\n}\n";
    let count_after = |variant: Variant| {
        let mut f = parse_function(src).unwrap();
        convert_function(&mut f, Target::Ia64, GenStrategy::AfterDef);
        run_step3(&mut f, &SxeConfig::for_variant(variant), None);
        (extends_in(&f, 1), extends_in(&f, 2))
    };
    let (all_loop, all_exit) = count_after(Variant::All);
    let (pde_loop, pde_exit) = count_after(Variant::AllPde);
    // Simple insertion moves the extension out of the loop entirely.
    assert_eq!((all_loop, all_exit), (0, 1), "simple insertion wins");
    // The PDE variant leaves at least as many extensions in the loop.
    assert!(pde_loop >= all_loop);
    assert!(pde_loop + pde_exit >= all_loop + all_exit);
}

#[test]
fn figure6_gen_def_beats_gen_use() {
    // Figure 6: in a loop, j = a[i]+1 feeds both (double)j and the next
    // iteration. Generating before uses pins an extension at the i2d in
    // the loop; the def-generating full pipeline does better.
    let src = "func @fig6(i32, i32) -> f64 {\n\
         b0:\n    r2 = newarray.i32 r0\n    br b1\n\
         b1:\n    r3 = aload.i32 r2, r1\n    r4 = const.i32 1\n    r3 = add.i32 r3, r4\n    r5 = i32tof64.f64 r3\n    r6 = const.i32 1\n    r1 = sub.i32 r1, r6\n    condbr gt.i32 r1, r4, b1, b2\n\
         b2:\n    ret r5\n}\n";
    let dynamic = |variant: Variant| {
        let m = sxe_ir::parse_module(src).unwrap();
        let c = sxe_jit::Compiler::for_variant(variant).compile(&m);
        let mut vm = sxe_vm::Vm::new(&c.module, Target::Ia64);
        vm.run("fig6", &[8, 7]).expect("no trap");
        vm.counters().extend_count(Some(Width::W32))
    };
    let gen_use = dynamic(Variant::GenUse);
    let all = dynamic(Variant::All);
    assert!(
        all <= gen_use,
        "the def-generating full algorithm beats the use-generating reference: all={all} gen_use={gen_use}"
    );
}
