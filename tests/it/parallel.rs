//! Sharded-compilation properties: the parallel pipeline must be an
//! implementation detail. Whatever the worker-pool size and whether the
//! analysis cache is on, the compiled module, elimination statistics,
//! optimizer statistics, and the shape of the compile report are
//! byte-identical to the sequential compile — and the fallible API
//! refuses bad inputs with typed errors instead of panicking.

use sxe_core::Variant;
use sxe_jit::prelude::*;

/// Everything that must match across thread counts and cache settings:
/// function bodies, elimination stats, optimizer stats, and the per-pass
/// record shapes.
type Fingerprint = (String, String, String, Vec<(String, Option<String>, String)>);

/// Durations are excluded on purpose: wall-clock is the only thing
/// sharding is allowed to change.
fn fingerprint(c: &Compiled) -> Fingerprint {
    (
        c.module.iter().map(|(_, f)| f.to_string()).collect::<Vec<_>>().join("\n"),
        format!("{:?}", c.stats),
        format!("{:?}", c.opt_stats),
        c.report
            .records
            .iter()
            .map(|r| (r.pass.clone(), r.function.clone(), r.status.to_string()))
            .collect(),
    )
}

/// The acceptance property: across all 17 benchmark workloads, a
/// threads=4 compile is indistinguishable from the sequential one.
#[test]
fn sharded_compile_matches_sequential_on_every_workload() {
    let sequential = Compiler::for_variant(Variant::All);
    let sharded = Compiler::for_variant(Variant::All).with_threads(4);
    let workloads = sxe_workloads::all();
    assert_eq!(workloads.len(), 17, "the full benchmark suite");
    for w in workloads {
        let size = ((w.default_size as f64 * 0.05) as u32).max(4);
        let m = w.build(size);
        let seq = fingerprint(&sequential.compile(&m));
        let par = fingerprint(&sharded.compile(&m));
        assert_eq!(seq, par, "{}: threads=4 output diverged from sequential", w.name);
    }
}

/// Profiled compilation (the interpreter + dynamic compiler loop) is
/// deterministic under sharding too — profile collection happens at a
/// sequential barrier between step 2 and step 3.
#[test]
fn sharded_profiled_compile_matches_sequential() {
    let sequential = Compiler::for_variant(Variant::All);
    let sharded = Compiler::for_variant(Variant::All).with_threads(4);
    for w in sxe_workloads::all().iter().take(5) {
        let size = ((w.default_size as f64 * 0.05) as u32).max(4);
        let m = w.build(size);
        let seq = fingerprint(&sequential.compile_profiled(&m, "main", &[]));
        let par = fingerprint(&sharded.compile_profiled(&m, "main", &[]));
        assert_eq!(seq, par, "{}: profiled sharded compile diverged", w.name);
    }
}

/// The analysis cache is invisible in the output, on and off, sequential
/// and sharded.
#[test]
fn cache_setting_never_changes_output() {
    for threads in [1usize, 4] {
        for w in sxe_workloads::all().iter().take(5) {
            let size = ((w.default_size as f64 * 0.05) as u32).max(4);
            let m = w.build(size);
            let cached = Compiler::for_variant(Variant::All)
                .with_threads(threads)
                .with_cache(true)
                .compile(&m);
            let uncached = Compiler::for_variant(Variant::All)
                .with_threads(threads)
                .with_cache(false)
                .compile(&m);
            assert_eq!(
                fingerprint(&cached),
                fingerprint(&uncached),
                "{} threads={threads}: cache changed the output",
                w.name
            );
        }
    }
}

/// Batch compilation shards whole modules and keeps input order.
#[test]
fn batch_results_arrive_in_input_order() {
    let modules: Vec<_> = sxe_workloads::all()
        .iter()
        .map(|w| w.build(((w.default_size as f64 * 0.05) as u32).max(4)))
        .collect();
    let sequential = Compiler::for_variant(Variant::All).compile_batch(&modules);
    let sharded = Compiler::for_variant(Variant::All).with_threads(4).compile_batch(&modules);
    assert_eq!(sequential.len(), modules.len());
    for (i, (s, p)) in sequential.iter().zip(&sharded).enumerate() {
        assert_eq!(fingerprint(s), fingerprint(p), "batch item {i} diverged");
    }
}

/// The fallible API reports typed errors where the old API panicked.
#[test]
fn typed_errors_cover_the_refusal_cases() {
    let w = &sxe_workloads::all()[0];
    let m = w.build(w.default_size / 20);
    // Missing profiling entry.
    let err = Compiler::for_variant(Variant::All)
        .try_compile_profiled(&m, "no_such_entry", &[])
        .unwrap_err();
    assert_eq!(err, CompileError::MissingEntry("no_such_entry".into()));
    assert!(err.to_string().contains("no_such_entry"));
    // Budget empty before the first pass.
    let err = Compiler::for_variant(Variant::All)
        .with_budget(Some(0), None)
        .try_compile(&m)
        .unwrap_err();
    assert_eq!(err, CompileError::BudgetExhaustedBeforeStart);
    // A well-formed module compiles on the same fallible path.
    assert!(Compiler::for_variant(Variant::All).with_threads(4).try_compile(&m).is_ok());
}

/// The builder covers every knob and the prelude exports everything the
/// snippet in the crate docs needs.
#[test]
fn builder_and_prelude_round_trip() {
    let compiler = Compiler::builder(Variant::All)
        .target(Target::Ppc64)
        .budget(Some(1 << 40), None)
        .threads(4)
        .cache(false)
        .build();
    assert_eq!(compiler.sxe.target, Target::Ppc64);
    assert_eq!(compiler.threads, 4);
    assert!(!compiler.cache);
    let w = &sxe_workloads::all()[0];
    let compiled = compiler.compile(&w.build(16));
    assert!(compiled.report.clean(), "{}", compiled.report.summary());
}
