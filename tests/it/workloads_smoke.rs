//! Every workload × every variant: compiles, verifies, runs, and agrees
//! with the baseline execution bit-for-bit.

use sxe_core::Variant;
use sxe_ir::Target;
use xelim_integration_tests::compile_run;

const FUEL: u64 = 80_000_000;
const TEST_SIZE: u32 = 24;

#[test]
fn all_variants_agree_on_all_workloads() {
    for w in sxe_workloads::all() {
        let m = w.build(TEST_SIZE);
        let (reference, base_count) =
            compile_run(&m, Variant::Baseline, Target::Ia64, "main", &[], FUEL);
        assert!(reference.trap.is_none(), "{} baseline trapped", w.name);
        for v in Variant::ALL {
            let (key, count) = compile_run(&m, v, Target::Ia64, "main", &[], FUEL);
            assert_eq!(reference, key, "{} diverged under {v}", w.name);
            if v == Variant::All {
                assert!(
                    count <= base_count,
                    "{}: `all` executed more extensions ({count}) than baseline ({base_count})",
                    w.name
                );
            }
        }
    }
}

#[test]
fn ppc64_variants_agree_too() {
    for w in sxe_workloads::all() {
        let m = w.build(12);
        let (reference, _) =
            compile_run(&m, Variant::Baseline, Target::Ppc64, "main", &[], FUEL);
        assert!(reference.trap.is_none(), "{} baseline trapped", w.name);
        for v in [Variant::FirstAlgorithm, Variant::All, Variant::AllPde] {
            let (key, _) = compile_run(&m, v, Target::Ppc64, "main", &[], FUEL);
            assert_eq!(reference, key, "{} diverged under {v} on ppc64", w.name);
        }
    }
}

#[test]
fn profile_guided_compile_agrees() {
    for w in sxe_workloads::all().into_iter().take(4) {
        let m = w.build(12);
        let compiler = sxe_jit::Compiler::for_variant(Variant::All);
        let plain = compiler.compile(&m);
        let profiled = compiler.compile_profiled(&m, "main", &[]);
        let run = |module: &sxe_ir::Module| {
            let mut vm =
                sxe_vm::Vm::builder(module).target(Target::Ia64).fuel(FUEL).build();
            vm.run("main", &[]).expect("no trap").ret
        };
        assert_eq!(run(&plain.module), run(&profiled.module), "{}", w.name);
    }
}
