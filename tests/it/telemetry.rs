//! Integration tests for the telemetry subsystem: span nesting across
//! containment boundaries, deterministic trace merges under sharding,
//! Chrome-trace round-tripping, schema-valid metrics that reconcile with
//! the compile report, and a byte-identical disabled path.

use sxe_core::Variant;
use sxe_jit::{Compiler, FaultPlan, PassStatus, RollbackCause, Telemetry};
use sxe_telemetry::{ArgValue, Event, Phase};

fn workload_module() -> sxe_ir::Module {
    sxe_workloads::by_name("numeric sort").expect("known workload").build(60)
}

/// Everything about an event that must not depend on thread count:
/// name, category, phase, lane, deterministic span id, and arguments.
/// Only timestamps, durations, and thread ids may vary.
fn normalize(events: &[Event]) -> Vec<(String, &'static str, bool, String, u64, String)> {
    events
        .iter()
        .map(|e| {
            (
                e.name.to_string(),
                e.cat,
                e.ph == Phase::Complete,
                e.lane.to_string(),
                e.span,
                format!("{:?}", e.args),
            )
        })
        .collect()
}

#[test]
fn panicking_pass_closes_its_span_with_an_incident_tag() {
    let module = workload_module();
    // Fault-free dry run to learn the boundary count, then aim a panic
    // at a mid-pipeline boundary.
    let boundaries = Compiler::for_variant(Variant::All).compile(&module).report.boundaries();
    assert!(boundaries > 4, "workload should cross several boundaries");
    let plan = FaultPlan {
        seed: 7,
        panic_at: Some(boundaries as u32 / 2),
        ..FaultPlan::default()
    };
    let tel = Telemetry::enabled();
    let compiled = Compiler::for_variant(Variant::All)
        .with_telemetry(tel.clone())
        .with_fault_plan(plan)
        .compile(&module);

    let rolled: Vec<_> = compiled
        .report
        .records
        .iter()
        .filter(|r| matches!(r.status, PassStatus::RolledBack(RollbackCause::Panic(_))))
        .collect();
    assert_eq!(rolled.len(), 1, "exactly one injected panic");
    let events = tel.events_snapshot();

    // Every boundary record links to a closed span event — including the
    // one whose body panicked out of catch_unwind.
    for r in &compiled.report.records {
        let id = r.span.expect("telemetry enabled: every record carries a span id");
        let ev = events
            .iter()
            .find(|e| e.span == id)
            .unwrap_or_else(|| panic!("no event for {} span {id}", r.pass));
        assert_eq!(ev.name, r.pass.as_str());
        assert_eq!(ev.ph, Phase::Complete, "span was closed");
    }

    // The panicked boundary's event is tagged as an incident.
    let id = rolled[0].span.unwrap();
    let ev = events.iter().find(|e| e.span == id).unwrap();
    assert!(
        ev.args.contains(&("incident", ArgValue::Bool(true))),
        "panicked span tagged incident: {:?}",
        ev.args
    );
    assert!(
        ev.args.contains(&("status", ArgValue::Str("rolled-back".into()))),
        "status arg records the rollback: {:?}",
        ev.args
    );
    assert!(
        ev.args.iter().any(|(k, _)| *k == "injected"),
        "injected fault named in args: {:?}",
        ev.args
    );
}

#[test]
fn trace_merge_is_deterministic_across_thread_counts() {
    let module = workload_module();
    let trace_with = |threads: usize| {
        let tel = Telemetry::enabled();
        let compiler = Compiler::builder(Variant::All)
            .threads(threads)
            .telemetry(tel.clone())
            .build();
        let compiled = compiler.compile(&module);
        (normalize(&tel.events_snapshot()), compiled.module.to_string())
    };
    let (seq_events, seq_module) = trace_with(1);
    let (par_events, par_module) = trace_with(4);
    assert_eq!(seq_module, par_module, "sharding must not change the module");
    assert!(!seq_events.is_empty());
    assert_eq!(
        seq_events, par_events,
        "merged trace is identical at any thread count (modulo tids and timing)"
    );
}

#[test]
fn chrome_trace_round_trips_through_the_parser() {
    let module = workload_module();
    let tel = Telemetry::enabled();
    let _ = Compiler::for_variant(Variant::All).with_telemetry(tel.clone()).compile(&module);
    let events = tel.events_snapshot();
    assert!(!events.is_empty());

    let doc = sxe_telemetry::json::parse(&tel.chrome_trace()).expect("export parses");
    let trace = doc.get("traceEvents").and_then(|v| v.as_arr()).expect("traceEvents array");
    // One exported record per event plus the process_name metadata record.
    assert_eq!(trace.len(), events.len() + 1);
    for rec in trace {
        let ph = rec.get("ph").and_then(|v| v.as_str()).expect("ph");
        assert!(matches!(ph, "M" | "X" | "i"), "perfetto-known phase, got {ph}");
        assert!(rec.get("name").is_some() && rec.get("pid").is_some());
        if ph == "X" {
            assert!(rec.get("dur").and_then(|v| v.as_f64()).is_some());
        }
    }
    // Span ids survive the round trip, so PassRecord::span can be looked
    // up in the exported file.
    let exported_spans: Vec<f64> = trace
        .iter()
        .filter_map(|r| r.get("args").and_then(|a| a.get("span")).and_then(|v| v.as_f64()))
        .collect();
    let nonzero = events.iter().filter(|e| e.span != 0).count();
    assert_eq!(exported_spans.len(), nonzero);
}

#[test]
fn metrics_reconcile_with_compiled_stats_and_validate() {
    let module = workload_module();
    let tel = Telemetry::enabled();
    let compiled = Compiler::for_variant(Variant::All).with_telemetry(tel.clone()).compile(&module);
    let m = tel.metrics_snapshot();

    assert_eq!(m.counter("compile.modules"), 1);
    assert_eq!(m.counter("sxe.extends_generated"), compiled.stats.generated as u64);
    assert_eq!(m.counter("sxe.extends_examined"), compiled.stats.examined as u64);
    assert_eq!(m.counter("sxe.extends_eliminated.total"), compiled.stats.eliminated as u64);
    assert_eq!(
        m.counter("sxe.extends_eliminated.array"),
        compiled.stats.eliminated_via_array as u64
    );
    assert_eq!(
        m.counter("sxe.extends_eliminated.udu") + m.counter("sxe.extends_eliminated.array"),
        m.counter("sxe.extends_eliminated.total"),
        "elimination taxonomy sums exactly"
    );
    assert_eq!(m.counter("compile.boundaries"), compiled.report.boundaries() as u64);
    assert_eq!(m.counter("compile.incidents"), compiled.report.incidents() as u64);
    let rewrites: u64 = m
        .counters()
        .filter(|(k, _)| k.starts_with("opt.rewrites."))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(
        rewrites,
        compiled.opt_stats.total() as u64,
        "optimizer rewrites reconcile with OptStats"
    );

    // The export is valid under the checked-in schema.
    let schema_text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../schemas/metrics.schema.json"
    ))
    .expect("schema file");
    let schema = sxe_telemetry::json::parse(&schema_text).expect("schema parses");
    let doc = sxe_telemetry::json::parse(&tel.metrics_json()).expect("export parses");
    let violations = sxe_telemetry::schema::validate(&schema, &doc);
    assert!(violations.is_empty(), "schema violations: {violations:?}");
}

#[test]
fn disabled_sink_leaves_compilation_untouched() {
    let module = workload_module();
    let plain = Compiler::for_variant(Variant::All).compile(&module);
    let disabled = Compiler::for_variant(Variant::All)
        .with_telemetry(Telemetry::disabled())
        .compile(&module);
    let tel = Telemetry::enabled();
    let traced =
        Compiler::for_variant(Variant::All).with_telemetry(tel.clone()).compile(&module);

    // Byte-identical module text and identical stats with the sink off…
    assert_eq!(plain.module.to_string(), disabled.module.to_string());
    assert_eq!(format!("{:?}", plain.stats), format!("{:?}", disabled.stats));
    assert_eq!(format!("{:?}", plain.opt_stats), format!("{:?}", disabled.opt_stats));
    // …and the sink being on never changes what is compiled either.
    assert_eq!(plain.module.to_string(), traced.module.to_string());

    // Span ids only exist when the sink is live.
    assert!(plain.report.records.iter().all(|r| r.span.is_none()));
    assert!(traced.report.records.iter().all(|r| r.span.is_some()));
    // A disabled sink exports empty but well-formed documents.
    let off = Telemetry::disabled();
    assert!(off.events_snapshot().is_empty());
    assert!(sxe_telemetry::json::parse(&off.chrome_trace()).is_ok());
    assert!(sxe_telemetry::json::parse(&off.metrics_json()).is_ok());
}
