//! Differential property tests: every algorithm variant, on both
//! targets, must preserve the observable behaviour of randomly generated
//! programs — return value, heap contents, and trap kind. The VM's
//! machine model makes any unsound elimination visible (wrong values
//! through `i2d`/64-bit compares, or a `WildAddress` fault on array
//! accesses), so this is a direct soundness check of the paper's
//! algorithm and of our general optimizer.

use sxe_core::Variant;
use sxe_ir::Target;
use xelim_integration_tests::{compile_run, gen};

const FUEL: u64 = 2_000_000;
const CASES: usize = 64;

fn check_all_variants(p: &gen::Program, target: Target) {
    let m = gen::lower(p);
    let (reference, _) = compile_run(&m, Variant::Baseline, target, "main", &[], FUEL);
    for v in Variant::ALL {
        let (key, _) = compile_run(&m, v, target, "main", &[], FUEL);
        assert_eq!(reference, key, "{v} diverged on {target}\nprogram: {p:?}");
    }
}

#[test]
fn zext_elimination_preserves_semantics() {
    use sxe_jit::Compiler;
    use sxe_vm::Vm;
    for (i, p) in gen::program_corpus(0xd1ff_0001, CASES) {
        let m = gen::lower(&p);
        let (reference, _) =
            compile_run(&m, Variant::Baseline, Target::Ia64, "main", &[], FUEL);
        let mut compiler = Compiler::for_variant(Variant::All);
        compiler.sxe.eliminate_zext = true;
        let compiled = compiler.compile(&m);
        let mut vm =
            Vm::builder(&compiled.module).target(Target::Ia64).fuel(FUEL).build();
        let key = match vm.run("main", &[]) {
            Ok(out) => xelim_integration_tests::RunKey {
                ret: out.ret,
                heap: Some(out.heap_checksum),
                trap: None,
            },
            Err(e) => {
                xelim_integration_tests::RunKey { ret: None, heap: None, trap: e.trap_kind() }
            }
        };
        assert_eq!(reference, key, "zext elimination diverged on case {i}: {p:?}");
    }
}

#[test]
fn variants_preserve_semantics_ia64() {
    for (_, p) in gen::program_corpus(0xd1ff_0002, CASES) {
        check_all_variants(&p, Target::Ia64);
    }
}

#[test]
fn variants_preserve_semantics_ppc64() {
    for (_, p) in gen::program_corpus(0xd1ff_0003, CASES) {
        check_all_variants(&p, Target::Ppc64);
    }
}

#[test]
fn optimized_never_executes_more_extends() {
    for (_, p) in gen::program_corpus(0xd1ff_0004, CASES) {
        let m = gen::lower(&p);
        let (bkey, baseline) =
            compile_run(&m, Variant::Baseline, Target::Ia64, "main", &[], FUEL);
        // Only compare when the run completes (traps cut execution short
        // at arbitrary points).
        if bkey.trap.is_some() {
            continue;
        }
        let (_, all) = compile_run(&m, Variant::All, Target::Ia64, "main", &[], FUEL);
        assert!(all <= baseline, "dynamic extends grew: baseline={baseline} all={all}");
    }
}
