//! Cross-crate fuzzing integration: the 500-module generator property
//! sweep, campaign determinism across worker counts with reduction
//! enabled, and a clean sweep on the second target.

use sxe_fuzz::{generate_module, module_seed, run_campaign, Campaign, FuzzConfig, GenConfig};
use sxe_ir::{parse_module, verify_module, Target};
use sxe_jit::Telemetry;
use sxe_vm::OracleConfig;

/// Every generated module is verifier-valid and survives an exact
/// print -> parse round trip — the property that makes `.sxir` finding
/// files faithful reproducers.
#[test]
fn five_hundred_generated_modules_verify_and_round_trip() {
    let cfg = GenConfig::default();
    for index in 0..500 {
        let seed = module_seed(0x5eed_0500, index);
        let m = generate_module(seed, &cfg);
        verify_module(&m).unwrap_or_else(|e| panic!("module {index} (seed {seed:#x}): {e}\n{m}"));
        let text = m.to_string();
        let back = parse_module(&text).unwrap_or_else(|e| {
            panic!("module {index} (seed {seed:#x}) does not re-parse: {e}\n{text}")
        });
        assert_eq!(back, m, "module {index} (seed {seed:#x}) round-trips");
    }
}

/// The full loop — find, dedup, minimize — produces byte-identical
/// findings and reduced reproducers at any worker count.
#[test]
fn planted_campaign_reduces_identically_at_any_thread_count() {
    let base = FuzzConfig {
        count: 6,
        plant: true,
        oracle: OracleConfig::new().runs(4),
        ..FuzzConfig::default()
    };
    let one = run_campaign(&base, &Telemetry::disabled());
    let four = run_campaign(&FuzzConfig { threads: 4, ..base }, &Telemetry::disabled());
    assert!(!one.findings.is_empty(), "the planted miscompile must be found");
    let key = |c: &Campaign| {
        c.findings
            .iter()
            .map(|f| {
                (
                    f.index,
                    f.module_seed,
                    f.signature.to_string(),
                    f.module.to_string(),
                    f.reduced.as_ref().expect("reduction ran").to_string(),
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(key(&one), key(&four));
}

/// A clean campaign on the PowerPC-style target: the pipeline and the
/// oracle agree there too.
#[test]
fn clean_campaign_on_ppc64_finds_nothing() {
    let config = FuzzConfig {
        count: 16,
        target: Target::Ppc64,
        oracle: OracleConfig::new().runs(4),
        ..FuzzConfig::default()
    };
    let campaign = run_campaign(&config, &Telemetry::disabled());
    assert!(campaign.comparisons > 0);
    assert!(
        campaign.findings.is_empty(),
        "ppc64 campaign must be clean: {:#?}",
        campaign.findings.iter().map(|f| &f.detail).collect::<Vec<_>>()
    );
}
